//! Figure 4: connections/sec vs CPU cores for nginx (a) and HAProxy
//! (b), comparing base Linux 2.6.32, Linux 3.13 (`SO_REUSEPORT`) and
//! Fastsocket.

use serde::{Deserialize, Serialize};

use crate::config::{AppSpec, KernelSpec, SimConfig};
use crate::sim::Simulation;

/// One measured point of Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Kernel label.
    pub kernel: String,
    /// Core count.
    pub cores: u16,
    /// Measured connections/sec.
    pub cps: f64,
    /// Spin share of busy cycles.
    pub spin_share: f64,
}

/// The full figure: one point per kernel per core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    /// `nginx` or `haproxy`.
    pub app: String,
    /// Measured points.
    pub points: Vec<Fig4Point>,
}

/// The paper's core-count sweep.
pub const CORE_COUNTS: [u16; 7] = [1, 4, 8, 12, 16, 20, 24];

/// Paper reference values at 24 cores (connections/sec), for the
/// paper-vs-measured table: `(kernel, nginx, haproxy)`.
pub const PAPER_AT_24: [(&str, f64, f64); 3] = [
    ("base-2.6.32", 178_000.0, 52_000.0),
    ("linux-3.13", 283_000.0, 283_000.0),
    ("fastsocket", 475_000.0, 422_000.0),
];

/// Runs the sweep for one application. `measure_secs` trades accuracy
/// for run time (the paper measures steady state; 0.2 s of simulated
/// time is ≥40k connections at the rates of interest).
pub fn run(app: AppSpec, core_counts: &[u16], measure_secs: f64) -> Fig4 {
    let mut points = Vec::new();
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        for &cores in core_counts {
            let cfg = SimConfig::new(kernel.clone(), app.clone(), cores)
                .warmup_secs(0.1)
                .measure_secs(measure_secs);
            let r = Simulation::new(cfg).run();
            points.push(Fig4Point {
                kernel: r.kernel.clone(),
                cores,
                cps: r.throughput_cps,
                spin_share: r.lock_spin_share(),
            });
        }
    }
    Fig4 {
        app: app.label().to_string(),
        points,
    }
}

impl Fig4 {
    /// The measured point for `(kernel, cores)`.
    pub fn at(&self, kernel: &str, cores: u16) -> Option<&Fig4Point> {
        self.points
            .iter()
            .find(|p| p.kernel == kernel && p.cores == cores)
    }

    /// Speedup of a kernel at `cores` relative to its own single-core
    /// throughput (the paper's "20.0x" metric). `None` when either
    /// point was not measured.
    pub fn speedup(&self, kernel: &str, cores: u16) -> Option<f64> {
        let one = self.at(kernel, 1)?.cps;
        let n = self.at(kernel, cores)?.cps;
        (one > 0.0).then(|| n / one)
    }
}
