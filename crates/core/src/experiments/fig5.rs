//! Figure 5: throughput, L3 cache miss rate and local packet proportion
//! under different NIC delivery features (HAProxy on 16 cores).
//!
//! Configurations, as in the paper: RSS alone, RFD+RSS, FDir in ATR
//! mode, RFD+FDir_ATR, and RFD+FDir Perfect-Filtering. Fastsocket-aware
//! VFS and the Local Listen Table are always enabled. The Local
//! Established Table requires RFD's delivery guarantee, so the RFD-off
//! rows run with the global established table (exactly why the paper
//! never tests FDir Perfect without RFD — naive partition breaks TCP).

use serde::{Deserialize, Serialize};
use sim_nic::SteeringMode;
use tcp_stack::established::EstVariant;
use tcp_stack::ports::PortAllocVariant;
use tcp_stack::stack::StackConfig;

use crate::config::{AppSpec, KernelSpec, SimConfig};
use crate::sim::Simulation;

/// One NIC-configuration row of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NicSetup {
    /// RSS spreading only.
    Rss,
    /// RSS with Receive Flow Deliver software steering.
    RfdRss,
    /// Flow Director in ATR mode.
    FdirAtr,
    /// ATR plus RFD fixing the ATR misses.
    RfdFdirAtr,
    /// Perfect-Filtering programmed with the RFD mask (plus RFD).
    RfdFdirPerfect,
}

impl NicSetup {
    /// All rows in figure order.
    pub const ALL: [NicSetup; 5] = [
        NicSetup::Rss,
        NicSetup::RfdRss,
        NicSetup::FdirAtr,
        NicSetup::RfdFdirAtr,
        NicSetup::RfdFdirPerfect,
    ];

    /// Label as the figure's x-axis prints it.
    pub fn label(self) -> &'static str {
        match self {
            NicSetup::Rss => "RSS",
            NicSetup::RfdRss => "RFD+RSS",
            NicSetup::FdirAtr => "FDir_ATR",
            NicSetup::RfdFdirAtr => "RFD+FDir_ATR",
            NicSetup::RfdFdirPerfect => "RFD+FDir_perfect",
        }
    }

    /// Whether RFD software steering is on.
    pub fn rfd(self) -> bool {
        !matches!(self, NicSetup::Rss | NicSetup::FdirAtr)
    }

    /// The NIC steering mode.
    pub fn steering(self) -> SteeringMode {
        match self {
            NicSetup::Rss | NicSetup::RfdRss => SteeringMode::Rss,
            NicSetup::FdirAtr | NicSetup::RfdFdirAtr => SteeringMode::FdirAtr,
            NicSetup::RfdFdirPerfect => SteeringMode::FdirPerfect,
        }
    }

    /// The kernel configuration: Fastsocket VFS + Local Listen Table
    /// always; Local Established Table and per-core ports only under
    /// RFD's delivery guarantee.
    pub fn kernel(self, cores: u16) -> StackConfig {
        let mut c = StackConfig::fastsocket(cores);
        if !self.rfd() {
            c.rfd = false;
            c.established = EstVariant::Global;
            c.port_alloc = PortAllocVariant::Global;
        }
        c
    }
}

/// One measured row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Configuration label.
    pub setup: String,
    /// Connections/sec (Figure 5a bars).
    pub cps: f64,
    /// L3 miss rate (Figure 5a line).
    pub l3_miss_rate: f64,
    /// Local packet proportion (Figure 5b).
    pub local_proportion: f64,
}

/// The measured figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// One row per NIC setup.
    pub rows: Vec<Fig5Row>,
    /// Cores used (the paper uses a 16-core SandyBridge).
    pub cores: u16,
}

/// Paper reference values: `(label, cps, miss rate, local proportion)`.
pub const PAPER: [(&str, f64, f64, f64); 5] = [
    ("RSS", 261_000.0, 0.13, 0.062),
    ("RFD+RSS", 277_000.0, 0.07, 0.062),
    ("FDir_ATR", 290_700.0, 0.075, 0.765),
    ("RFD+FDir_ATR", 293_000.0, 0.072, 0.765),
    ("RFD+FDir_perfect", 300_000.0, 0.057, 1.0),
];

/// Runs all five configurations.
pub fn run(cores: u16, measure_secs: f64) -> Fig5 {
    let rows = NicSetup::ALL
        .iter()
        .map(|&setup| {
            let cfg = SimConfig::new(
                KernelSpec::Custom(Box::new(setup.kernel(cores))),
                AppSpec::proxy(),
                cores,
            )
            .steering(setup.steering())
            .warmup_secs(0.1)
            .measure_secs(measure_secs);
            let r = Simulation::new(cfg).run();
            Fig5Row {
                setup: setup.label().to_string(),
                cps: r.throughput_cps,
                l3_miss_rate: r.l3_miss_rate,
                local_proportion: r.local_packet_proportion,
            }
        })
        .collect();
    Fig5 { rows, cores }
}

impl Fig5 {
    /// The row for a setup label.
    pub fn row(&self, label: &str) -> Option<&Fig5Row> {
        self.rows.iter().find(|r| r.setup == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfd_off_rows_use_global_tables() {
        let c = NicSetup::Rss.kernel(16);
        assert!(!c.rfd);
        assert_eq!(c.established, EstVariant::Global);
        let c = NicSetup::RfdFdirPerfect.kernel(16);
        assert!(c.rfd);
        assert_eq!(c.established, EstVariant::Local);
    }

    #[test]
    fn labels_match_figure() {
        assert_eq!(NicSetup::FdirAtr.label(), "FDir_ATR");
        assert_eq!(NicSetup::ALL.len(), 5);
    }
}
