//! Experiment drivers regenerating the paper's tables and figures.
//!
//! Each submodule corresponds to one evaluation artefact; the
//! `fastsocket-bench` binaries call these and print paper-vs-measured
//! rows. See `EXPERIMENTS.md` at the repository root for recorded
//! results.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`fig3`] | Figure 3 — production diurnal CPU utilization |
//! | [`fig4`] | Figure 4 — nginx/HAProxy throughput vs cores |
//! | [`fig5`] | Figure 5 — NIC steering: throughput, L3 misses, locality |
//! | [`table1`] | Table 1 — lockstat contention counts per feature |
//! | [`micro`] | §2.1 / §4.2.4 in-text profiling claims |

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod micro;
pub mod table1;
