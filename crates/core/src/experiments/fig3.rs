//! Figure 3: 24-hour per-core CPU utilization of two 8-core HAProxy
//! servers serving the same diurnal traffic — one stock, one
//! Fastsocket.
//!
//! The paper's box plot shows two effects: Fastsocket lowers *average*
//! utilization (less lock/cache overhead per connection) and collapses
//! the *spread* across cores (per-core process zones balance perfectly,
//! while the shared accept queue makes some cores persistently hotter).
//! From the 18:30 sample the paper derives a 53.5% effective-capacity
//! improvement; [`Fig3::capacity_improvement`] reproduces that formula.

use serde::{Deserialize, Serialize};
use sim_core::CYCLES_PER_SEC;

use crate::config::{AppSpec, KernelSpec, SimConfig};
use crate::sim::Simulation;

/// Diurnal load shape (fraction of peak, one entry per hour 0–23),
/// shaped like consumer-service traffic: trough before dawn, evening
/// peak.
pub const DIURNAL: [f64; 24] = [
    0.55, 0.45, 0.35, 0.28, 0.25, 0.27, 0.35, 0.50, 0.65, 0.75, 0.80, 0.82, 0.85, 0.82, 0.80, 0.82,
    0.85, 0.88, 0.95, 1.00, 0.98, 0.90, 0.80, 0.65,
];

/// One hourly utilization sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HourSample {
    /// Hour of day, 0–23.
    pub hour: u8,
    /// Offered load (connections/sec target).
    pub offered_cps: f64,
    /// Achieved connections/sec.
    pub cps: f64,
    /// Mean core utilization.
    pub avg: f64,
    /// Minimum core utilization.
    pub min: f64,
    /// Maximum core utilization (the effective-capacity limiter).
    pub max: f64,
}

/// One server's day.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DayTrace {
    /// Kernel label.
    pub kernel: String,
    /// Hourly samples.
    pub hours: Vec<HourSample>,
}

/// The full figure: both servers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// Stock-kernel server.
    pub base: DayTrace,
    /// Fastsocket server.
    pub fastsocket: DayTrace,
}

/// Paper values at the 18:30 sample: base utilization 31.7–57.7%
/// (avg 45.1%), Fastsocket 32.7–37.6% (avg 34.3%), capacity +53.5%.
pub const PAPER_CAPACITY_IMPROVEMENT: f64 = 0.535;

fn run_day(
    kernel: KernelSpec,
    cores: u16,
    peak_cps: f64,
    measure_secs: f64,
    seed: u64,
) -> DayTrace {
    let mut hours = Vec::new();
    let concurrency: u32 = u32::from(cores) * 120;
    for (hour, frac) in DIURNAL.iter().enumerate() {
        let offered = peak_cps * frac;
        // Closed-loop pacing: each of C slots completes one connection
        // per (latency + think); pick think so C/(latency+think) ==
        // offered. Latency ≈ RTT + service.
        let latency_secs = 0.000_25;
        let think = (f64::from(concurrency) / offered - latency_secs).max(0.0);
        let cfg = SimConfig::new(kernel.clone(), AppSpec::proxy(), cores)
            .warmup_secs(0.1)
            .measure_secs(measure_secs)
            .concurrency(concurrency)
            .think_secs(think)
            .seed(seed ^ (hour as u64) << 32);
        let r = Simulation::new(cfg).run();
        let (min, max) = r.utilization_spread();
        hours.push(HourSample {
            hour: hour as u8,
            offered_cps: offered,
            cps: r.throughput_cps,
            avg: r.avg_utilization(),
            min,
            max,
        });
    }
    DayTrace {
        kernel: kernel.label().to_string(),
        hours,
    }
}

/// Runs both servers through the diurnal day. `peak_cps` is the peak
/// offered load; the paper's 8-core production boxes with 1GE NICs run
/// well below saturation (the SLA keeps the hottest core under 75%).
pub fn run(cores: u16, peak_cps: f64, measure_secs: f64) -> Fig3 {
    Fig3 {
        base: run_day(KernelSpec::BaseLinux, cores, peak_cps, measure_secs, 7),
        fastsocket: run_day(KernelSpec::Fastsocket, cores, peak_cps, measure_secs, 7),
    }
}

impl Fig3 {
    /// The paper's effective-capacity formula at the busiest hour:
    /// capacity is inversely proportional to the *hottest* core's
    /// utilization, so the improvement is
    /// `(1/max_fs - 1/max_base) / (1/max_base)`.
    pub fn capacity_improvement(&self) -> f64 {
        let busiest = |d: &DayTrace| {
            d.hours
                .iter()
                .max_by(|a, b| a.max.total_cmp(&b.max))
                .map(|h| h.max)
                .unwrap_or(1.0)
        };
        let base = busiest(&self.base);
        let fs = busiest(&self.fastsocket);
        if fs <= 0.0 {
            return 0.0;
        }
        (1.0 / fs - 1.0 / base) / (1.0 / base)
    }

    /// Average utilization reduction at the busiest base hour.
    pub fn avg_utilization_reduction(&self) -> f64 {
        let peak_hour = self
            .base
            .hours
            .iter()
            .max_by(|a, b| a.avg.total_cmp(&b.avg))
            .map(|h| h.hour)
            .unwrap_or(19);
        let b = &self.base.hours[peak_hour as usize];
        let f = &self.fastsocket.hours[peak_hour as usize];
        if b.avg <= 0.0 {
            0.0
        } else {
            (b.avg - f.avg) / b.avg
        }
    }
}

/// Sanity helper: cycles corresponding to `secs` (re-exported for the
/// harness binaries).
pub fn secs(secs: f64) -> u64 {
    (secs * CYCLES_PER_SEC as f64) as u64
}
