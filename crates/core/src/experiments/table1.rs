//! Table 1: lockstat contention counts under the HAProxy benchmark on
//! 24 cores, as Fastsocket's features are enabled one at a time.
//!
//! Columns follow the paper:
//!
//! * **Baseline** — stock 2.6.32;
//! * **+V** — Fastsocket-aware VFS;
//! * **+VL** — plus Local Listen Table;
//! * **+VLR** — plus Receive Flow Deliver (with its per-core port
//!   allocator);
//! * **+VLRE** — plus Local Established Table (full Fastsocket).
//!
//! The paper runs 60 seconds; the simulation runs a shorter window and
//! scales the counts linearly (contentions are rate-proportional in
//! steady state), recording the scale factor in the result.

use serde::{Deserialize, Serialize};
use sim_os::vfs::VfsMode;
use tcp_stack::established::EstVariant;
use tcp_stack::ports::PortAllocVariant;
use tcp_stack::stack::StackConfig;
use tcp_stack::ListenVariant;

use crate::config::{AppSpec, KernelSpec, SimConfig};
use crate::sim::Simulation;

/// The feature-accumulation steps of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureStep {
    /// Stock 2.6.32.
    Baseline,
    /// + Fastsocket-aware VFS.
    V,
    /// + Local Listen Table.
    Vl,
    /// + Receive Flow Deliver.
    Vlr,
    /// + Local Established Table (full Fastsocket).
    Vlre,
}

impl FeatureStep {
    /// All steps in table order.
    pub const ALL: [FeatureStep; 5] = [
        FeatureStep::Baseline,
        FeatureStep::V,
        FeatureStep::Vl,
        FeatureStep::Vlr,
        FeatureStep::Vlre,
    ];

    /// Column header as the paper prints it.
    pub fn label(self) -> &'static str {
        match self {
            FeatureStep::Baseline => "Baseline",
            FeatureStep::V => "+V",
            FeatureStep::Vl => "+VL",
            FeatureStep::Vlr => "+VLR",
            FeatureStep::Vlre => "+VLRE",
        }
    }

    /// The stack configuration for this step.
    pub fn config(self, cores: u16) -> StackConfig {
        let mut c = StackConfig::base_linux(cores);
        if self >= FeatureStep::V {
            c.vfs_mode = VfsMode::Fastpath;
        }
        if self >= FeatureStep::Vl {
            c.listen = ListenVariant::Local;
        }
        if self >= FeatureStep::Vlr {
            c.rfd = true;
            c.port_alloc = PortAllocVariant::PerCore;
        }
        if self >= FeatureStep::Vlre {
            c.established = EstVariant::Local;
        }
        c
    }
}

impl PartialOrd for FeatureStep {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some((*self as usize).cmp(&(*other as usize)))
    }
}

/// Lock contention counts for one feature step, scaled to the paper's
/// 60-second window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Column {
    /// Which step.
    pub step: String,
    /// Throughput achieved (context for the counts).
    pub cps: f64,
    /// `(lock name, contentions scaled to 60 s)`.
    pub contentions: Vec<(String, u64)>,
}

/// The measured table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// One column per feature step.
    pub columns: Vec<Table1Column>,
    /// Simulated measurement seconds behind each column (counts are
    /// scaled by `60 / measure_secs`).
    pub measure_secs: f64,
}

/// The locks Table 1 reports, in row order.
pub const TABLE1_LOCKS: [&str; 6] = [
    "dcache_lock",
    "inode_lock",
    "slock",
    "ep.lock",
    "base.lock",
    "ehash.lock",
];

/// Paper values (contentions over 60 s) for the Baseline column.
pub const PAPER_BASELINE: [(&str, u64); 6] = [
    ("dcache_lock", 26_400_000),
    ("inode_lock", 4_300_000),
    ("slock", 422_700),
    ("ep.lock", 1_000_000),
    ("base.lock", 451_300),
    ("ehash.lock", 868),
];

/// Runs the table on `cores` cores (the paper uses 24).
pub fn run(cores: u16, measure_secs: f64) -> Table1 {
    let mut columns = Vec::new();
    for step in FeatureStep::ALL {
        let cfg = SimConfig::new(
            KernelSpec::Custom(Box::new(step.config(cores))),
            AppSpec::proxy(),
            cores,
        )
        .warmup_secs(0.1)
        .measure_secs(measure_secs);
        let r = Simulation::new(cfg).run();
        let scale = 60.0 / r.measure_secs;
        let contentions = TABLE1_LOCKS
            .iter()
            .map(|&name| {
                let c = r.lock_contentions(name);
                (name.to_string(), (c as f64 * scale).round() as u64)
            })
            .collect();
        columns.push(Table1Column {
            step: step.label().to_string(),
            cps: r.throughput_cps,
            contentions,
        });
    }
    Table1 {
        columns,
        measure_secs,
    }
}

impl Table1 {
    /// Scaled contentions for `(step, lock)`.
    pub fn get(&self, step: &str, lock: &str) -> Option<u64> {
        self.columns
            .iter()
            .find(|c| c.step == step)?
            .contentions
            .iter()
            .find(|(n, _)| n == lock)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_steps_accumulate() {
        let base = FeatureStep::Baseline.config(24);
        assert_eq!(base.vfs_mode, VfsMode::Legacy);
        let v = FeatureStep::V.config(24);
        assert_eq!(v.vfs_mode, VfsMode::Fastpath);
        assert_eq!(v.listen, ListenVariant::Global);
        let vl = FeatureStep::Vl.config(24);
        assert_eq!(vl.listen, ListenVariant::Local);
        assert!(!vl.rfd);
        let vlr = FeatureStep::Vlr.config(24);
        assert!(vlr.rfd);
        assert_eq!(vlr.established, EstVariant::Global);
        let vlre = FeatureStep::Vlre.config(24);
        assert_eq!(vlre.established, EstVariant::Local);
    }

    #[test]
    fn step_order_is_total() {
        for w in FeatureStep::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
