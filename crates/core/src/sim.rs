//! The discrete-event simulation driver.
//!
//! Wires together the kernel context, the TCP stack, the NIC model, the
//! worker processes and the scripted peers, and runs the event loop:
//!
//! ```text
//! client slot ──SYN──▶ wire ──▶ NIC steering ──▶ per-core softirq
//!      ▲                                             │ net_rx (RFD,
//!      │                                             │  demux, TCP)
//!      └── wire ◀── TX path ◀── worker syscalls ◀── epoll wakeups
//! ```
//!
//! Every step is costed on the simulated CPU; locks, cache lines and
//! steering decisions behave per their models, so throughput curves,
//! contention counts and miss rates *emerge* rather than being
//! scripted.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use sim_apps::peer::{Backend, ClientSlot};
use sim_apps::sys::{Sys, Worker, LISTEN_TOKEN};
use sim_apps::{Proxy, WebServer};
use sim_check::CheckReport;
use sim_check::{Chan, Checker, PartitionPolicy, ShardClass, ShardPolicy};
use sim_core::{cycles_to_secs, usecs_to_cycles, CoreId, CycleClass, Cycles, EventQueue, SimRng};
use sim_fault::{FaultKind, RobustnessReport, WindowSample};
use sim_load::{ArrivalGen, LoadReport, OpenLoopConfig, ScheduleDigest};
use sim_mem::{CacheModel, CacheStats};
use sim_net::{FlowTuple, Packet, TcpFlags};
use sim_nic::{LaneRouter, Nic, NicConfig, QueueId, SteeringMode};
use sim_os::epoll::EpollId;
use sim_os::process::{Pid, ProcessTable};
use sim_os::softirq::SoftirqQueues;
use sim_os::KernelCtx;
use sim_sync::{ClassStats, LockClass, LockTable};
use sim_trace::{LatencyHistogram, TraceLabel, Tracer};
use tcp_stack::established::flow_hash;
use tcp_stack::stack::{OsServices, TcpStack};
use tcp_stack::StackStats;
use tcp_stack::{EstVariant, ListenVariant, SockId};

use crate::config::{AppSpec, SimConfig};
use crate::report::{lock_reports, BulkReport, EdgeReport, RunReport};

/// The server's IP address.
pub const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

/// Softirq packet-processing budget per scheduled run (NAPI-style).
const SOFTIRQ_BUDGET: usize = 16;

/// `epoll_wait` maxevents per worker wakeup. Small batches keep each
/// operation's virtual-time span short, which keeps the per-core
/// clocks tightly coupled (necessary for faithful lock contention).
const EPOLL_BATCH: usize = 8;

#[derive(Debug)]
enum Ev {
    /// A packet arrives at the server NIC.
    ToServer(Packet),
    /// A packet arrives at a peer (client slot or backend).
    ToPeer(Packet),
    /// Run the NET_RX softirq on a core.
    Softirq(u16),
    /// Run a worker process.
    ProcWake(u32),
    /// A TIME_WAIT socket expires.
    TwExpire(SockId, u64),
    /// A retransmission timer expires.
    Rto(SockId, u64),
    /// A client slot starts its next connection.
    ClientStart(u32),
    /// A client connection attempt timed out.
    ClientTimeout(u32, u64),
    /// Client-side retransmission check (loss recovery).
    ClientNudge(u32, u64),
    /// A long-lived client releases its held connection (sends FIN).
    ClientRelease(u32, u64),
    /// Inject scheduled fault `i` of the fault schedule.
    Fault(u32),
    /// Heal scheduled fault `i`.
    Heal(u32),
    /// Record one windowed throughput sample (fault schedules only).
    Sample,
    /// Inject one burst of spoofed SYNs for flood fault `i`.
    FloodTick(u32),
    /// An open-loop connection arrival is due (`sim-load` generator).
    Arrival,
    /// Periodic edge-tier maintenance: release due failover retries and
    /// launch active health probes (edge runs only).
    EdgeTick,
}

impl Ev {
    /// Dispatch-mix label for the tracer.
    fn label(&self) -> &'static str {
        match self {
            Ev::ToServer(_) => "to_server",
            Ev::ToPeer(_) => "to_peer",
            Ev::Softirq(_) => "softirq",
            Ev::ProcWake(_) => "proc_wake",
            Ev::TwExpire(..) => "tw_expire",
            Ev::Rto(..) => "rto",
            Ev::ClientStart(_) => "client_start",
            Ev::ClientTimeout(..) => "client_timeout",
            Ev::ClientNudge(..) => "client_nudge",
            Ev::ClientRelease(..) => "client_release",
            Ev::Fault(_) => "fault",
            Ev::Heal(_) => "heal",
            Ev::Sample => "sample",
            Ev::FloodTick(_) => "flood_tick",
            Ev::Arrival => "arrival",
            Ev::EdgeTick => "edge_tick",
        }
    }
}

/// Spacing of spoofed-SYN bursts during a SYN-flood fault.
const FLOOD_TICK_USECS: f64 = 50.0;

/// One arrival the open-loop engine has committed to but not yet
/// admitted (all client slots busy): it waits in the accept backlog of
/// the *population*, not the kernel.
#[derive(Debug, Clone, Copy)]
struct PendingSession {
    /// The cycle the arrival was scheduled for — latency is measured
    /// from here, never from admission (no coordinated omission).
    sched: Cycles,
    /// Request length for every request of the session.
    request_len: u16,
    /// Number of requests in the session (keep-alive length).
    requests: u32,
    /// Idle hold after the last response before the client FINs
    /// (WebSocket-like long-lived sessions); `0` = close immediately.
    hold: Cycles,
}

/// Open-loop workload state (`SimConfig::open_loop`).
///
/// Arrival times, per-session shapes and the response sizer all draw
/// from dedicated forks of one seeded root RNG, so the generated load
/// is a pure function of the seed — event interleaving, kernel variant
/// and scheduler backend cannot perturb it (the schedule digest proves
/// it).
#[derive(Debug)]
struct OpenLoop {
    cfg: OpenLoopConfig,
    gen: ArrivalGen,
    /// Session shapes: request length, response draw, session length.
    shape_rng: SimRng,
    /// Forked per worker for server-side response sizing.
    sizer_rng: SimRng,
    /// Client slots not currently running a session.
    free: Vec<u32>,
    /// Arrivals waiting for a free slot (population exhausted).
    backlog: VecDeque<PendingSession>,
    digest: ScheduleDigest,
    offered: u64,
    admitted: u64,
    queued_admissions: u64,
    abandoned_wait: u64,
    abandoned_connect: u64,
    completed_sessions: u64,
    peak_backlog: u64,
}

/// Cumulative client/stack counters at the last sample boundary.
#[derive(Debug, Clone, Copy, Default)]
struct SampleCursor {
    at: Cycles,
    completed: u64,
    resets: u64,
    timeouts: u64,
    refusals: u64,
}

/// One cross-lane message of the parallel lane-sharded engine: the only
/// traffic that crosses the simulated NIC boundary between lanes. Every
/// variant is timestamped by the *sender* at `emission + rtt/2`, which
/// is what makes the `rtt/2` lookahead horizon conservative.
#[derive(Debug)]
pub enum BoundaryMsg {
    /// A client→server packet bound for another lane's NIC.
    Server {
        /// Arrival cycle at the destination lane.
        at: Cycles,
        /// The packet.
        pkt: Packet,
    },
    /// A server→client packet bound for a client another lane owns.
    Peer {
        /// Arrival cycle at the destination lane.
        at: Cycles,
        /// The packet.
        pkt: Packet,
    },
    /// An open-loop lifecycle pre-mark (`SynArrival` at the scheduled
    /// arrival cycle) for a connection whose server-side state lives on
    /// another lane. Shipped *before* its SYN so the destination
    /// tracer's earliest-mark-wins rule sees the scheduled time first.
    Mark {
        /// Server-orientation flow hash keying the lifecycle tracker.
        conn: u64,
        /// The scheduled arrival cycle.
        ts: Cycles,
    },
}

/// Which lane of the sharded machine this `Simulation` instance is —
/// the legacy serial engine is simply the single lane of a 1-lane
/// machine with no router, which keeps every legacy code path (and its
/// golden digests) byte-identical.
#[derive(Debug)]
struct LaneEnv {
    /// This lane's index.
    id: u16,
    /// Total lanes in the sharded machine.
    lanes: u16,
    /// Global client-slot count across all lanes (jitter arithmetic
    /// must use global values so a 1-lane machine matches legacy).
    total_slots: u64,
    /// Local slot index → global slot id.
    slot_global: Vec<u32>,
    /// Cross-lane flow dispatcher; `None` on the legacy engine.
    router: Option<LaneRouter>,
    /// Cross-lane messages emitted during the current window.
    outbox: Vec<(u16, BoundaryMsg)>,
    /// Warmup-boundary snapshot taken by `lane_pump`.
    snap: Option<Snapshot>,
    /// Reusable dispatch batch for `lane_pump`.
    batch: Vec<Ev>,
}

impl LaneEnv {
    fn legacy(n_clients: u32) -> LaneEnv {
        LaneEnv {
            id: 0,
            lanes: 1,
            total_slots: u64::from(n_clients),
            slot_global: (0..n_clients).collect(),
            router: None,
            outbox: Vec::new(),
            snap: None,
            batch: Vec::new(),
        }
    }
}

/// The mergeable measurement a lane hands back when its windowed run
/// finishes — the raw ingredients of [`RunReport`], kept as plain data
/// so it can cross a thread boundary (`Simulation` itself cannot).
pub(crate) struct LaneOutcome {
    pub(crate) completed: u64,
    pub(crate) responses: u64,
    pub(crate) resets: u64,
    pub(crate) timeouts: u64,
    pub(crate) core_utilization: Vec<f64>,
    pub(crate) busy_total: u64,
    pub(crate) class_delta: [u64; CycleClass::COUNT],
    pub(crate) locks: Vec<(LockClass, ClassStats)>,
    pub(crate) cache: CacheStats,
    pub(crate) stack: StackStats,
    pub(crate) hists: Option<[LatencyHistogram; 3]>,
    pub(crate) checks: Option<CheckReport>,
    pub(crate) load: Option<LaneLoad>,
    pub(crate) payload_bytes: u64,
    pub(crate) events: u64,
    pub(crate) live_sockets: u32,
    pub(crate) mem: Option<sim_res::MemReport>,
}

/// Per-lane open-loop accounting carried by [`LaneOutcome`].
pub(crate) struct LaneLoad {
    pub(crate) offered: u64,
    pub(crate) admitted: u64,
    pub(crate) queued_admissions: u64,
    pub(crate) abandoned_wait: u64,
    pub(crate) abandoned_connect: u64,
    pub(crate) completed_sessions: u64,
    pub(crate) peak_backlog: u64,
    pub(crate) digest: u64,
}

/// One configured simulation, ready to [`run`](Simulation::run).
pub struct Simulation {
    cfg: SimConfig,
    ctx: KernelCtx,
    os: OsServices,
    stack: TcpStack,
    nic: Nic,
    softirq: SoftirqQueues<(Packet, bool)>,
    procs: ProcessTable,
    workers: Vec<Box<dyn Worker>>,
    eps: Vec<EpollId>,
    clients: Vec<ClientSlot>,
    client_attempt: Vec<u64>,
    /// Per-slot idle-hold duration of the session currently running
    /// (long-lived mix); consulted when the hold starts.
    client_hold: Vec<Cycles>,
    client_by_ip: HashMap<Ipv4Addr, u32>,
    backends: Vec<Backend>,
    backend_by_ip: HashMap<Ipv4Addr, usize>,
    events: EventQueue<Ev>,
    peer_rng: SimRng,
    now: Cycles,
    timeouts: u64,
    pending_crashes: Vec<CoreId>,
    tracer: Tracer,
    checker: Checker,
    /// Current client-wire loss probability (differs from `cfg.loss`
    /// inside a loss-burst fault window).
    active_loss: f64,
    /// `stalled[c]` holds the heal time while core `c` is serving a
    /// softirq-starvation fault.
    stalled: Vec<Option<Cycles>>,
    /// Whether scheduled fault `i` is currently active.
    fault_active: Vec<bool>,
    /// Monotonic spoofed-SYN counter (distinct flood tuples).
    flood_seq: u32,
    samples: Vec<WindowSample>,
    sample_cursor: SampleCursor,
    /// Open-loop workload engine (`None` = closed loop).
    open: Option<OpenLoop>,
    /// Lane identity within a sharded machine (legacy: the 1-lane
    /// identity, which leaves every code path untouched).
    lane: LaneEnv,
}

fn client_ip(slot: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, (1 + slot / 250) as u8, (slot % 250) as u8, 2)
}

/// The global client slot owning `ip` — the inverse of [`client_ip`].
/// `None` for every non-client address (server, backends, flood
/// spoofing space).
fn client_slot_of_ip(ip: Ipv4Addr) -> Option<u32> {
    let o = ip.octets();
    if o[0] == 10 && o[1] >= 1 && o[2] < 250 && o[3] == 2 {
        Some((u32::from(o[1]) - 1) * 250 + u32::from(o[2]))
    } else {
        None
    }
}

/// Per-kind shard-class bounds the kernel variant under test promises.
///
/// Only the full Fastsocket partition (local listen plus local
/// established plus RFD, no dedicated stack core) makes claims worth
/// certifying: its per-core tables, timer bases, and process zones are
/// supposed to keep connection state core-local, with the accept-path
/// handover and RFD warm-up as the only sanctioned migrations. Tcbs
/// and socket buffers may migrate once (softirq core to accepting
/// core before RFD has learned the flow) but must never ping-pong;
/// per-core infrastructure (listen socks, table buckets, timer bases,
/// fd tables, epoll instances) must stay strictly core-local. Stock
/// kernels share everything by design, so they certify permissively.
fn shard_policy(full_partition: bool) -> ShardPolicy {
    use sim_mem::ObjKind;
    if !full_partition {
        return ShardPolicy::permissive();
    }
    ShardPolicy::permissive()
        .with(ObjKind::Tcb, ShardClass::Migrated)
        .with(ObjKind::SockBuf, ShardClass::Migrated)
        .with(ObjKind::Dentry, ShardClass::Migrated)
        .with(ObjKind::Inode, ShardClass::Migrated)
        .with(ObjKind::ListenSock, ShardClass::CoreLocal)
        .with(ObjKind::TableBucket, ShardClass::CoreLocal)
        .with(ObjKind::Epoll, ShardClass::CoreLocal)
        .with(ObjKind::TimerBase, ShardClass::CoreLocal)
        .with(ObjKind::FdTable, ShardClass::CoreLocal)
}

/// Construction-time identity of a lane build (`None` = legacy).
#[derive(Debug, Clone, Copy)]
struct LaneSpec {
    lane: u16,
    lanes: u16,
    /// Machine-wide client-slot count (before lane partitioning).
    total_slots: u32,
}

impl Simulation {
    /// Builds the simulated machine, kernel, applications and peers.
    pub fn new(cfg: SimConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Builds lane `lane` of a `lanes`-lane sharded machine: a fully
    /// independent simulation owning `cores/lanes` cores, the client
    /// slots with global ids `≡ lane (mod lanes)`, and (open loop) a
    /// `1/lanes` thinning of the arrival process. All RNG streams are
    /// derived order-independently from `(seed, lane)`, so lanes built
    /// concurrently on different threads draw identical streams.
    pub(crate) fn new_lane(cfg: &SimConfig, lane: u16, lanes: u16) -> Self {
        assert!(lanes >= 2, "use Simulation::new for the 1-lane machine");
        assert_eq!(cfg.cores % lanes, 0, "lanes must divide the core count");
        let mut lane_cfg = cfg.clone();
        lane_cfg.cores = cfg.cores / lanes;
        lane_cfg.open_loop = cfg
            .open_loop
            .as_ref()
            .map(|o| o.split(u32::from(lane), u32::from(lanes)));
        // Each lane polices a 1/lanes share of the machine budget (its
        // cores are a 1/lanes share too); the merged report re-adds the
        // shares.
        lane_cfg.mem = cfg.mem.map(|m| m.split(lanes));
        lane_cfg.par = None;
        let total_slots = cfg
            .open_loop
            .as_ref()
            .map_or(cfg.workload.concurrency(cfg.cores), |o| o.population);
        Self::build(
            lane_cfg,
            Some(LaneSpec {
                lane,
                lanes,
                total_slots,
            }),
        )
    }

    fn build(cfg: SimConfig, spec: Option<LaneSpec>) -> Self {
        // Lane builds derive every RNG stream order-independently from
        // the (seed, lane) pair; the legacy engine keeps its original
        // direct seeding so golden digests are untouched.
        let stream = |seed: u64| match spec {
            None => SimRng::seed(seed),
            Some(s) => SimRng::stream(seed, u64::from(s.lane)),
        };
        let cores = cfg.cores;
        let mut stack_config = cfg.kernel.resolve(cores);
        stack_config.fault = cfg.fault;
        stack_config.tcb_cap = cfg.tcb_cap;
        stack_config.mem = cfg.mem;
        if let Some(on) = cfg.syn_cookies {
            stack_config.syn_cookies = on;
        }
        if let Some(dp) = cfg.data_plane {
            stack_config.cc = Some(dp.cc_config());
        }
        if let Some(e) = &cfg.edge {
            e.validate();
            assert!(
                matches!(cfg.app, AppSpec::Proxy(_)),
                "the edge tier is a proxy feature (SimConfig::edge with AppSpec::proxy)"
            );
            // Failed backends refuse connections with RSTs; the proxy
            // only learns of them if teardown posts an EPOLLERR-style
            // event, so the edge tier requires error events.
            stack_config.err_events = true;
        }
        let tracer = if cfg.trace {
            Tracer::enabled(cores, cfg.trace_ring_capacity)
        } else {
            Tracer::disabled()
        };
        let checker = if cfg.check {
            // Arm the partition lints the kernel variant actually
            // promises. Timer affinity only holds under the full
            // Fastsocket partition (stock kernels legitimately re-arm
            // timers from remote cores); IsoStack's dedicated stack
            // core deliberately splits app and softirq cores.
            let full_partition = stack_config.listen == ListenVariant::Local
                && stack_config.established == EstVariant::Local
                && stack_config.rfd
                && !cfg.dedicated_stack_core;
            // A worker crash migrates its local queues to the global
            // fallback; the surviving workers then legitimately serve,
            // tear down, and re-arm timers for the migrated connections
            // from their own cores, so the est-affinity and
            // timer-affinity lints stand down for crash schedules.
            let crash_faults = cfg.faults.has_worker_crash();
            let checker = Checker::enabled(
                cores,
                PartitionPolicy {
                    local_listen: stack_config.listen == ListenVariant::Local,
                    local_est: stack_config.established == EstVariant::Local && !crash_faults,
                    rfd: stack_config.rfd,
                    timer_affinity: full_partition && !crash_faults,
                },
            );
            // The shard certifier's per-kind bounds hold for undamaged
            // runs only: a fault schedule migrates queues and legally
            // ping-pongs ownership, so it certifies permissively there.
            if cfg.faults.is_empty() {
                checker.set_shard_policy(shard_policy(full_partition));
            }
            // With no scheduled faults and no injection knob armed, a
            // broken table invariant is a bug — fail hard, as the
            // tables did before the fault-injection PR soft-downgraded
            // their assertions.
            checker
                .set_strict(cfg.faults.is_empty() && cfg.fault == tcp_stack::FaultInjection::None);
            checker
        } else {
            Checker::disabled()
        };
        let mut ctx = KernelCtx::new(
            cores as usize,
            LockTable::new(cfg.lock_costs),
            CacheModel::new(cfg.cache_costs),
            stream(cfg.seed),
        );
        ctx.set_tracer(tracer.clone());
        ctx.set_checker(checker.clone());
        let os = OsServices::new(&mut ctx, &stack_config);
        let stack = TcpStack::new(&mut ctx, stack_config);
        let mut nic_config = NicConfig::new(cores, cfg.steering);
        nic_config.atr = cfg.atr;
        nic_config.rfd_shift = stack.config().rfd_shift;
        if let Some(dp) = cfg.data_plane {
            nic_config.batch = dp.batch;
        }
        if cfg.edge.as_ref().is_some_and(|e| e.early_drop) {
            // XDP-style pre-steering drop: the spoofed SYN-flood source
            // space (172.16/12) never overlaps real clients (10/8), so
            // the blacklist is a pure hostile-traffic filter.
            nic_config.early_drop = Some(sim_nic::DropFilter::blacklisting(vec![(
                Ipv4Addr::new(172, 16, 0, 0),
                12,
            )]));
        }
        if cfg.dedicated_stack_core {
            // IsoStack: every RX queue interrupts the dedicated core.
            nic_config.irq_affinity = vec![CoreId(0); cores as usize];
        }
        let nic = Nic::new(nic_config);
        let softirq = SoftirqQueues::new(cores as usize);

        // The open-loop engine, when configured: arrival generator and
        // shape/sizer RNGs are forks of one root seeded independently
        // of the kernel-side RNG, so the offered load is identical
        // across kernel variants.
        let open = cfg.open_loop.clone().map(|oc| {
            let mut root = stream(cfg.seed ^ 0x6f70_656e_6c6f_6f70); // "openloop"
            let gen = ArrivalGen::new(oc.arrivals.clone(), oc.profile.clone(), root.fork());
            let shape_rng = root.fork();
            let sizer_rng = root.fork();
            let free = (0..oc.population).rev().collect();
            OpenLoop {
                cfg: oc,
                gen,
                shape_rng,
                sizer_rng,
                free,
                backlog: VecDeque::new(),
                digest: ScheduleDigest::new(),
                offered: 0,
                admitted: 0,
                queued_admissions: 0,
                abandoned_wait: 0,
                abandoned_connect: 0,
                completed_sessions: 0,
                peak_backlog: 0,
            }
        });

        // Peers. Open loop sizes the slot pool from the client
        // population; closed loop from the workload concurrency. A lane
        // owns the slots with global ids ≡ lane (mod lanes) — IPs stay
        // globally unique, and a 1-lane machine reduces to the legacy
        // identity mapping.
        let n_clients = open
            .as_ref()
            .map_or(cfg.workload.concurrency(cores), |o| o.cfg.population);
        let lane_env = match spec {
            None => LaneEnv::legacy(n_clients),
            Some(s) => LaneEnv {
                id: s.lane,
                lanes: s.lanes,
                total_slots: u64::from(s.total_slots),
                slot_global: (0..n_clients)
                    .map(|i| u32::from(s.lane) + i * u32::from(s.lanes))
                    .collect(),
                router: Some(LaneRouter::new(s.lanes)),
                outbox: Vec::new(),
                snap: None,
                batch: Vec::new(),
            },
        };
        let mut clients = Vec::with_capacity(n_clients as usize);
        let mut client_by_ip = HashMap::new();
        for s in 0..n_clients {
            let ip = client_ip(lane_env.slot_global[s as usize]);
            client_by_ip.insert(ip, s);
            let mut slot = ClientSlot::new(
                ip,
                SERVER_IP,
                cfg.app.port(),
                cfg.workload.request_len,
                cfg.workload.requests_per_conn,
            );
            if let Some(dp) = cfg.data_plane {
                slot = slot.with_bulk(dp.response_bytes);
            }
            clients.push(slot);
        }
        let mut backends = Vec::new();
        let mut backend_by_ip = HashMap::new();
        if let AppSpec::Proxy(p) = &cfg.app {
            // The edge tier supplies its own backend set (the pools'
            // deduplicated union, whose indices are the FaultKind::
            // BackendCrash index space); plain proxies keep theirs.
            let ips: Vec<Ipv4Addr> = match &cfg.edge {
                Some(e) => e.union_backends(),
                None => p.backends.clone(),
            };
            let pooled = cfg.edge.as_ref().is_some_and(|e| e.pooling > 0);
            for (i, &ip) in ips.iter().enumerate() {
                backend_by_ip.insert(ip, i);
                let mut b = Backend::new(ip, p.backend_port, p.response_len);
                if let Some(dp) = cfg.data_plane {
                    b = b.with_bulk(dp.response_bytes, dp.mss);
                }
                if pooled {
                    // Pooled backend connections stay open across
                    // requests: the backend must not FIN after each
                    // response.
                    b = b.with_keep_alive(true);
                }
                backends.push(b);
            }
        }

        let peer_rng = stream(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut events = EventQueue::with_scheduler(cfg.scheduler, 1 << 16);
        events.set_tracer(tracer.clone(), Ev::label);
        let active_loss = cfg.loss;
        let stalled = vec![None; cores as usize];
        let fault_active = vec![false; cfg.faults.events.len()];
        Simulation {
            cfg,
            ctx,
            os,
            stack,
            nic,
            softirq,
            procs: ProcessTable::new(),
            workers: Vec::new(),
            eps: Vec::new(),
            clients,
            client_attempt: vec![0; n_clients as usize],
            client_hold: vec![0; n_clients as usize],
            client_by_ip,
            backends,
            backend_by_ip,
            events,
            peer_rng,
            now: 0,
            timeouts: 0,
            pending_crashes: Vec::new(),
            tracer,
            checker,
            active_loss,
            stalled,
            fault_active,
            flood_seq: 0,
            samples: Vec::new(),
            sample_cursor: SampleCursor::default(),
            open,
            lane: lane_env,
        }
    }

    /// A handle to this run's tracer. Clones share state, so the handle
    /// stays valid after [`Simulation::run`] consumes the simulation —
    /// grab it before running, read traces after.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// A handle to this run's sanitizer. Clones share state (same
    /// pattern as [`Simulation::tracer`]): grab it before running, read
    /// the [`sim_check::CheckReport`] after.
    pub fn checker(&self) -> Checker {
        self.checker.clone()
    }

    /// Schedules the worker pinned to `core` to crash at startup (after
    /// listen setup): its process dies and the kernel destroys its
    /// per-process listen socket — the robustness scenario of §2.1 /
    /// Figure 2's slow path.
    pub fn crash_worker(&mut self, core: CoreId) {
        self.pending_crashes.push(core);
    }

    /// Read-only access to the TCP stack (tests, fault injection).
    pub fn stack_mut(&mut self) -> &mut TcpStack {
        &mut self.stack
    }

    /// Read-only access to the kernel context.
    pub fn ctx(&self) -> &KernelCtx {
        &self.ctx
    }

    fn setup(&mut self) {
        let cores = self.cfg.cores;
        let port = self.cfg.app.port();
        let backlog = self.cfg.backlog;

        // The master process creates the (global) listen socket.
        let mut op = self.ctx.begin(CoreId(0), 0);
        self.stack
            .listen(&mut self.ctx, &mut op, port, backlog, CoreId(0));
        op.commit(&mut self.ctx.cpu);

        // Fork one worker per core, pinned; register listen sockets and
        // epoll interest per the kernel variant. Under the IsoStack
        // architecture core 0 is reserved for the network stack.
        let first_worker_core: u16 = if self.cfg.dedicated_stack_core && cores > 1 {
            1
        } else {
            0
        };
        for c in first_worker_core..cores {
            self.spawn_worker(CoreId(c));
        }

        if let Some(o) = &mut self.open {
            // Open loop: connections start when the arrival process
            // says so, nothing else.
            let first = o.gen.next_arrival();
            self.events.push(first, Ev::Arrival);
        } else {
            // Stagger the client starts over ~2 RTTs to avoid a
            // synthetic SYN burst at t=0. The arithmetic runs on global
            // slot ids over the machine-wide population, so a lane's
            // slots keep the exact offsets they'd have on the whole
            // machine (and the 1-lane identity matches legacy
            // bit-for-bit).
            let n = self.lane.total_slots;
            for s in 0..self.clients.len() as u32 {
                let g = self.lane.slot_global[s as usize];
                let jitter = (u64::from(g) * 2 * self.cfg.rtt) / n.max(1);
                self.events.push(jitter, Ev::ClientStart(s));
            }
        }

        // Scheduled faults: injection, healing and the window sampler
        // that feeds the RobustnessReport.
        for (i, ev) in self.cfg.faults.events.iter().enumerate() {
            self.events.push(ev.at, Ev::Fault(i as u32));
            if let Some(h) = ev.heal_at {
                self.events.push(h, Ev::Heal(i as u32));
            }
        }
        if !self.cfg.faults.is_empty() {
            let w = self.sample_window_cycles();
            self.events.push(w, Ev::Sample);
        }

        // Edge maintenance heartbeat: retry release and health probes.
        if let Some(e) = &self.cfg.edge {
            self.events.push(e.probe_interval, Ev::EdgeTick);
        }
    }

    /// Forks a worker pinned to `core` and registers its listen/epoll
    /// interest per the kernel variant. Used at setup and again when a
    /// crashed worker restarts (fault healing).
    fn spawn_worker(&mut self, core: CoreId) {
        let port = self.cfg.app.port();
        let backlog = self.cfg.backlog;
        let variant = self.stack.config().listen;
        let global_ls = self.stack.listen_table_mut().global_of(port);
        let pid = self.procs.spawn(core);
        let ep = self.os.epolls.create(&mut self.ctx, core);
        self.eps.push(ep);
        let mut op = self.ctx.begin(core, self.now);
        match variant {
            ListenVariant::Global => {
                self.stack.watch_listen(
                    &mut self.ctx,
                    &mut self.os,
                    &mut op,
                    global_ls,
                    ep,
                    pid,
                    LISTEN_TOKEN,
                );
            }
            ListenVariant::ReusePort => {
                let copy =
                    self.stack
                        .reuseport_listen(&mut self.ctx, &mut op, port, backlog, pid, core);
                self.stack.watch_listen(
                    &mut self.ctx,
                    &mut self.os,
                    &mut op,
                    copy,
                    ep,
                    pid,
                    LISTEN_TOKEN,
                );
            }
            ListenVariant::Local => {
                let local =
                    self.stack
                        .local_listen(&mut self.ctx, &mut op, port, backlog, pid, core);
                self.stack.watch_listen(
                    &mut self.ctx,
                    &mut self.os,
                    &mut op,
                    local,
                    ep,
                    pid,
                    LISTEN_TOKEN,
                );
                self.stack.watch_listen(
                    &mut self.ctx,
                    &mut self.os,
                    &mut op,
                    global_ls,
                    ep,
                    pid,
                    LISTEN_TOKEN,
                );
            }
        }
        op.commit(&mut self.ctx.cpu);

        // Keep the server's lifecycle consistent with the workload:
        // multi-request connections require the client to close.
        let keep_alive = self
            .open
            .as_ref()
            .map_or(self.cfg.workload.requests_per_conn > 1, |o| {
                o.cfg.keep_alive()
            });
        // Open-loop runs sample response sizes server-side from the
        // configured distribution, with a per-worker RNG fork.
        let sizer = self
            .open
            .as_mut()
            .map(|o| (o.cfg.response_len, o.sizer_rng.fork()));
        let worker: Box<dyn Worker> = match &self.cfg.app {
            AppSpec::Web(w) => {
                let mut w = *w;
                w.keep_alive = keep_alive;
                let mut srv = WebServer::new(w);
                if let Some((dist, rng)) = sizer {
                    srv = srv.with_response_sizer(dist, rng);
                }
                if let Some(dp) = self.cfg.data_plane {
                    srv = srv.with_bulk(dp.response_bytes);
                }
                Box::new(srv)
            }
            AppSpec::Proxy(p) => {
                let mut srv = Proxy::new(p.clone())
                    .with_keep_alive(keep_alive)
                    .with_bulk(self.cfg.data_plane.is_some());
                if let Some((dist, rng)) = sizer {
                    srv = srv.with_response_sizer(dist, rng);
                }
                if let Some(e) = &self.cfg.edge {
                    // Per-worker retry-jitter stream, forked from a
                    // dedicated root so edge arming never perturbs the
                    // kernel-side or peer RNG sequences.
                    let rng = SimRng::stream(
                        self.cfg.seed ^ 0x6564_6765_7469_6572, // "edgetier"
                        u64::from(pid.0),
                    );
                    srv = srv.with_edge(e.clone(), rng);
                }
                Box::new(srv)
            }
        };
        self.workers.push(worker);

        // A restarted worker must notice connections that queued up on
        // the global fallback while its predecessor was dead.
        if self.stack.accept_ready(port, core) {
            self.wake(pid, self.now);
        }
    }

    /// Runs the simulation to completion and produces the report.
    pub fn run(mut self) -> RunReport {
        self.setup();
        let port = self.cfg.app.port();
        for core in std::mem::take(&mut self.pending_crashes) {
            if let Some(pid) = self.procs.on_core(core) {
                self.procs.kill(pid);
            }
            let orphans = self
                .stack
                .listen_table_mut()
                .destroy_process_socket(port, core);
            debug_assert!(orphans.is_empty(), "no connections exist yet");
        }
        let warmup = self.cfg.warmup;
        let end = warmup + self.cfg.measure;
        let mut snap: Option<Snapshot> = None;

        // Batched dispatch: drain every event sharing the earliest
        // timestamp in one pull (a whole NIC burst, every same-tick
        // softirq) instead of re-querying the scheduler per event.
        // Events scheduled *at* `t` during dispatch carry later sequence
        // numbers, so they form the next batch — the order is identical
        // to per-event pops.
        let mut batch: Vec<Ev> = Vec::new();
        while let Some(t) = self.events.pop_batch(&mut batch) {
            if t >= end {
                break;
            }
            self.now = t;
            self.ctx.locks.set_epoch(t);
            if snap.is_none() && t >= warmup {
                snap = Some(self.snapshot());
                // Latency histograms and cycle attribution cover only
                // the measurement window; open spans and in-flight
                // handshakes carry over.
                self.tracer.reset_window();
            }
            for ev in batch.drain(..) {
                self.dispatch(ev);
            }
        }
        let snap = snap.unwrap_or_else(|| self.snapshot());
        self.tracer.finish(end);
        self.report(snap, end)
    }

    // ------------------------------------------------------------------
    // Lane-sharded execution (driven by `crate::par`)
    // ------------------------------------------------------------------

    /// Runs setup for a windowed lane run (the lane analogue of the
    /// prologue of [`run`](Self::run); lanes never carry scheduled
    /// crashes, so that arm is omitted).
    pub(crate) fn lane_start(&mut self) {
        debug_assert!(self.pending_crashes.is_empty());
        self.setup();
    }

    /// Pumps every event strictly before `until`, peek-based so events
    /// at or beyond the window boundary stay queued for later windows
    /// (the legacy loop may discard a popped batch at the end of the
    /// run; a lane must not, since its run continues).
    pub(crate) fn lane_pump(&mut self, until: Cycles) {
        let warmup = self.cfg.warmup;
        let mut batch = std::mem::take(&mut self.lane.batch);
        while let Some(t) = self.events.peek_time() {
            if t >= until {
                break;
            }
            let popped = self.events.pop_batch(&mut batch);
            debug_assert_eq!(popped, Some(t));
            self.now = t;
            self.ctx.locks.set_epoch(t);
            if self.lane.snap.is_none() && t >= warmup {
                let snap = self.snapshot();
                self.lane.snap = Some(snap);
                self.tracer.reset_window();
            }
            for ev in batch.drain(..) {
                self.dispatch(ev);
            }
        }
        self.lane.batch = batch;
    }

    /// Moves this window's cross-lane messages into per-destination
    /// buckets (`buckets[dst]`), preserving emission order.
    pub(crate) fn lane_drain_outbox(&mut self, buckets: &mut [Vec<BoundaryMsg>]) {
        for (dst, msg) in self.lane.outbox.drain(..) {
            buckets[usize::from(dst)].push(msg);
        }
    }

    /// Applies one source lane's window batch. `not_before` is the
    /// window boundary: a valid lookahead horizon guarantees every
    /// timestamp is already at or past it, so the clamp is a no-op —
    /// with a *violated* horizon the clamp deterministically shifts
    /// arrivals, which is exactly how the negative determinism test
    /// observes the violation.
    pub(crate) fn lane_deliver(&mut self, msgs: Vec<BoundaryMsg>, not_before: Cycles) {
        for msg in msgs {
            match msg {
                BoundaryMsg::Server { at, pkt } => {
                    self.events.push(at.max(not_before), Ev::ToServer(pkt));
                }
                BoundaryMsg::Peer { at, pkt } => {
                    self.events.push(at.max(not_before), Ev::ToPeer(pkt));
                }
                BoundaryMsg::Mark { conn, ts } => {
                    self.tracer.mark(ts, 0, conn, TraceLabel::SynArrival);
                }
            }
        }
    }

    /// Finishes a windowed lane run at `end` and reduces it to the
    /// mergeable [`LaneOutcome`] — the same measurement-window math as
    /// [`report`](Self::report), kept as raw data instead of a report.
    pub(crate) fn lane_finish(mut self, end: Cycles) -> LaneOutcome {
        if let Some(detail) = self.stack.mem_imbalance() {
            self.checker.invariant_violation("mem_account", 0, detail);
        }
        let snap = match self.lane.snap.take() {
            Some(s) => s,
            None => self.snapshot(),
        };
        self.tracer.finish(end);
        let window = end.saturating_sub(snap.at).max(1);
        let cores = self.cfg.cores as usize;

        let completed: u64 = self.clients.iter().map(|c| c.completed).sum::<u64>() - snap.completed;
        let responses: u64 = self.clients.iter().map(|c| c.responses).sum::<u64>() - snap.responses;
        let resets: u64 = self.clients.iter().map(|c| c.resets).sum::<u64>() - snap.resets;
        let timeouts = self.timeouts - snap.timeouts;
        let payload_bytes = self.clients.iter().map(|c| c.bytes_received).sum::<u64>() - snap.bytes;

        let mut core_utilization = Vec::with_capacity(cores);
        let mut class_delta = [0u64; CycleClass::COUNT];
        let mut busy_total = 0u64;
        for c in 0..cores {
            let busy = self.ctx.cpu.busy_cycles(CoreId(c as u16)) - snap.busy[c];
            busy_total += busy;
            core_utilization.push((busy as f64 / window as f64).min(1.0));
            for (i, cl) in CycleClass::ALL.iter().enumerate() {
                class_delta[i] +=
                    self.ctx.cpu.class_cycles(CoreId(c as u16), *cl) - snap.class[c][i];
            }
        }

        let load = self.open.as_ref().map(|o| LaneLoad {
            offered: o.offered,
            admitted: o.admitted,
            queued_admissions: o.queued_admissions,
            abandoned_wait: o.abandoned_wait,
            abandoned_connect: o.abandoned_connect,
            completed_sessions: o.completed_sessions,
            peak_backlog: o.peak_backlog,
            digest: o.digest.value(),
        });

        LaneOutcome {
            completed,
            responses,
            resets,
            timeouts,
            core_utilization,
            busy_total,
            class_delta,
            locks: self.ctx.locks.all_stats().to_vec(),
            cache: self.ctx.cache.stats(),
            stack: self.stack.stats(),
            hists: self.tracer.lifecycle_histograms(),
            checks: self.checker.report(),
            load,
            payload_bytes,
            events: self.events.delivered(),
            live_sockets: self.stack.socks.live_count(),
            mem: self.stack.mem_report(),
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::ToServer(pkt) => self.on_to_server(pkt),
            Ev::ToPeer(pkt) => self.on_to_peer(pkt),
            Ev::Softirq(core) => self.on_softirq(core),
            Ev::ProcWake(pid) => self.on_proc_wake(pid),
            Ev::TwExpire(sock, gen) => self.stack.tw_expire(&mut self.ctx, &mut self.os, sock, gen),
            Ev::Rto(sock, gen) => self.on_rto(sock, gen),
            Ev::ClientStart(slot) => self.on_client_start(slot),
            Ev::ClientTimeout(slot, attempt) => self.on_client_timeout(slot, attempt),
            Ev::ClientNudge(slot, attempt) => self.on_client_nudge(slot, attempt),
            Ev::ClientRelease(slot, attempt) => self.on_client_release(slot, attempt),
            Ev::Fault(i) => self.on_fault(i),
            Ev::Heal(i) => self.on_heal(i),
            Ev::Sample => self.on_sample(),
            Ev::FloodTick(i) => self.on_flood_tick(i),
            Ev::Arrival => self.on_arrival(),
            Ev::EdgeTick => self.on_edge_tick(),
        }
    }

    // ------------------------------------------------------------------
    // Open-loop workload
    // ------------------------------------------------------------------

    /// One open-loop arrival: draw the session shape, admit it onto a
    /// free client slot (or queue it against the population), and
    /// schedule the next arrival.
    fn on_arrival(&mut self) {
        let Some(o) = &mut self.open else {
            return;
        };
        let sched = self.now;
        let request_len = o.cfg.request_len.sample(&mut o.shape_rng);
        let mut requests = o.cfg.session.sample(&mut o.shape_rng);
        let mut hold = 0;
        if let Some(mix) = o.cfg.longlived {
            // The long-lived draw rides the same shape stream; gated on
            // the option so legacy schedules draw the identical
            // sequence.
            if o.shape_rng.chance(mix.fraction) {
                requests = mix.requests;
                hold = mix.hold;
            }
        }
        o.digest.push(sched);
        o.digest
            .push((u64::from(request_len) << 32) | u64::from(requests));
        if o.cfg.longlived.is_some() {
            o.digest.push(hold);
        }
        o.offered += 1;
        let next = o.gen.next_arrival();
        self.events.push(next, Ev::Arrival);
        let pending = PendingSession {
            sched,
            request_len,
            requests,
            hold,
        };
        if let Some(slot) = o.free.pop() {
            o.admitted += 1;
            self.start_open_session(slot, pending);
        } else {
            o.backlog.push_back(pending);
            o.peak_backlog = o.peak_backlog.max(o.backlog.len() as u64);
        }
    }

    /// Starts one admitted open-loop session on client slot `slot`.
    ///
    /// The lifecycle tracker is pre-marked with `SynArrival` at the
    /// *scheduled* arrival cycle (the tracker keeps the earliest mark
    /// per connection), so setup latency includes any admission queueing
    /// — the open-loop engine cannot commit coordinated omission.
    fn start_open_session(&mut self, slot: u32, p: PendingSession) {
        // A held session must close from the client side regardless of
        // the keep-alive policy: the hold *is* client-owned lingering.
        let client_closes = self.open.as_ref().is_some_and(|o| o.cfg.keep_alive()) || p.hold > 0;
        let timeout = self
            .open
            .as_ref()
            .map_or(self.cfg.client_timeout, |o| o.cfg.connect_timeout);
        self.clients[slot as usize].set_session(p.request_len, p.requests, client_closes);
        self.clients[slot as usize].set_hold(p.hold > 0);
        self.client_hold[slot as usize] = p.hold;
        let isn = self.peer_rng.next_u64() as u32;
        let syn = self.clients[slot as usize].start(isn);
        self.client_attempt[slot as usize] += 1;
        let attempt = self.client_attempt[slot as usize];
        // The stack keys lifecycle marks by the server-side flow
        // orientation. When the flow's server-side state lives on
        // another lane, the pre-mark ships with the SYN (mark first, so
        // the destination tracer's earliest-wins rule sees the
        // scheduled time before the stack marks actual arrival).
        let conn = flow_hash(&syn.flow.reversed());
        let at = self.now + self.cfg.rtt / 2;
        let dst = self
            .lane
            .router
            .as_ref()
            .map(|r| r.lane_for_flow(&syn.flow));
        match dst {
            Some(d) if d != self.lane.id => {
                self.lane
                    .outbox
                    .push((d, BoundaryMsg::Mark { conn, ts: p.sched }));
                self.lane
                    .outbox
                    .push((d, BoundaryMsg::Server { at, pkt: syn }));
            }
            _ => {
                self.tracer.mark(p.sched, 0, conn, TraceLabel::SynArrival);
                self.events.push(at, Ev::ToServer(syn));
            }
        }
        self.events
            .push(self.now + timeout, Ev::ClientTimeout(slot, attempt));
        if self.cfg.loss > 0.0 || self.cfg.faults.has_loss_burst() {
            self.events.push(
                self.now + self.nudge_interval(),
                Ev::ClientNudge(slot, attempt),
            );
        }
    }

    /// Returns an open-loop client slot to the pool, first serving the
    /// admission backlog: queued arrivals past their patience abandon,
    /// the first still-willing one is admitted with its original
    /// scheduled time (so its measured latency includes the wait).
    fn release_slot(&mut self, slot: u32) {
        let next = {
            let Some(o) = &mut self.open else {
                return;
            };
            loop {
                match o.backlog.pop_front() {
                    Some(p) if self.now.saturating_sub(p.sched) > o.cfg.patience => {
                        o.abandoned_wait += 1;
                    }
                    Some(p) => {
                        o.admitted += 1;
                        o.queued_admissions += 1;
                        break Some(p);
                    }
                    None => {
                        o.free.push(slot);
                        break None;
                    }
                }
            }
        };
        if let Some(p) = next {
            self.start_open_session(slot, p);
        }
    }

    fn on_rto(&mut self, sock: SockId, gen: u64) {
        if let Some(seg) = self.stack.on_rto(&mut self.ctx, &mut self.os, sock, gen) {
            let core = self.stack.socks.get(sock).app_core;
            let q = self.nic.tx_queue_for_core(core);
            self.nic.tx(&seg, q);
            self.send_to_peer(self.now + self.cfg.rtt / 2, seg);
        }
        self.arm_rtos();
        // Retry-abandonment posts error events from timer context (no
        // softirq wakeup list to ride); deliver the wakeups here.
        for pid in self.stack.take_err_wakeups() {
            self.wake(pid, self.now);
        }
    }

    fn arm_rtos(&mut self) {
        // Each arm carries its own delay: retransmission timers back
        // off exponentially with the attempt count.
        for (sock, gen, delay) in self.stack.take_rto_arms() {
            self.events.push(self.now + delay, Ev::Rto(sock, gen));
        }
    }

    /// Whether a packet crosses the lossy client wire (backends live on
    /// a lossless LAN). A lane applies loss at the *receiving* lane, so
    /// it classifies by the global client-IP pattern — its own
    /// `client_by_ip` only knows the clients it hosts.
    fn on_client_wire(&self, pkt: &Packet) -> bool {
        if self.lane.router.is_some() {
            client_slot_of_ip(pkt.flow.dst_ip).is_some()
                || client_slot_of_ip(pkt.flow.src_ip).is_some()
        } else {
            self.client_by_ip.contains_key(&pkt.flow.dst_ip)
                || self.client_by_ip.contains_key(&pkt.flow.src_ip)
        }
    }

    /// Dispatches a client-side packet toward the server NIC: on the
    /// legacy engine a plain event push; on a lane, the router decides
    /// which lane's NIC receives the flow — cross-lane packets go to
    /// the outbox for delivery at the next sync window. Backend LAN
    /// traffic is always lane-local (each lane owns backend replicas).
    fn send_to_server(&mut self, at: Cycles, pkt: Packet) {
        if let Some(router) = &self.lane.router {
            if client_slot_of_ip(pkt.flow.src_ip).is_some() {
                let dst = router.lane_for_flow(&pkt.flow);
                if dst != self.lane.id {
                    self.lane
                        .outbox
                        .push((dst, BoundaryMsg::Server { at, pkt }));
                    return;
                }
            }
        }
        self.events.push(at, Ev::ToServer(pkt));
    }

    /// Dispatches a server-side packet toward a peer: cross-lane when
    /// the destination client's global slot belongs to another lane.
    fn send_to_peer(&mut self, at: Cycles, pkt: Packet) {
        if self.lane.router.is_some() {
            if let Some(slot) = client_slot_of_ip(pkt.flow.dst_ip) {
                let owner = (slot % u32::from(self.lane.lanes)) as u16;
                if owner != self.lane.id {
                    self.lane
                        .outbox
                        .push((owner, BoundaryMsg::Peer { at, pkt }));
                    return;
                }
            }
        }
        self.events.push(at, Ev::ToPeer(pkt));
    }

    fn on_to_server(&mut self, pkt: Packet) {
        if self.active_loss > 0.0
            && self.on_client_wire(&pkt)
            && self.peer_rng.chance(self.active_loss)
        {
            return; // lost on the wire
        }
        // XDP-style pre-steering stage: blacklisted flows are discarded
        // in the driver before RSS/FDir, the softirq queues, and any
        // listen lock can see them.
        if self.nic.early_drop(&pkt) {
            return;
        }
        let core = self.nic.rx_core(&pkt);
        if self.softirq.push(core.index(), (pkt, false)) {
            self.events.push(self.now, Ev::Softirq(core.0));
        }
    }

    /// The heal time of a core-stall fault covering `core` right now.
    fn stalled_until(&self, core: CoreId) -> Option<Cycles> {
        self.stalled[core.index()].filter(|&t| t > self.now)
    }

    fn on_softirq(&mut self, core: u16) {
        if let Some(t) = self.stalled_until(CoreId(core)) {
            // Softirq starvation: the pending work sits in the per-core
            // backlog until the stall heals.
            self.events.push(t, Ev::Softirq(core));
            return;
        }
        let batch = self.softirq.drain(core as usize, SOFTIRQ_BUDGET);
        if batch.is_empty() {
            return;
        }
        let mut op = self.ctx.begin(CoreId(core), self.now);
        op.trace_enter(TraceLabel::Softirq);
        let mut tx: Vec<Packet> = Vec::new();
        let mut wakes: Vec<Pid> = Vec::new();
        let tw = self.stack.config().time_wait;
        for (pkt, steered) in batch {
            if steered {
                // The dequeue half of a cross-core softirq handoff:
                // order this core after whoever steered the packet.
                self.checker.hb_join(core, Chan::Softirq(core));
            }
            op.trace_enter(TraceLabel::NetRx);
            let out = self
                .stack
                .net_rx(&mut self.ctx, &mut self.os, &mut op, &pkt, steered);
            op.trace_exit(TraceLabel::NetRx);
            if let Some(target) = out.steer {
                // The enqueue half: published at the boundary below so
                // it carries the epoch stamping this packet's writes.
                self.checker.hb_publish(core, Chan::Softirq(target.0));
            }
            op.check_boundary();
            if let Some(target) = out.steer {
                if self.softirq.push(target.index(), (pkt, true)) {
                    self.events.push(op.now(), Ev::Softirq(target.0));
                }
                continue;
            }
            tx.extend(out.replies);
            wakes.extend(out.wakeups);
            for s in out.time_wait {
                let gen = self.stack.sock_gen(s);
                self.events.push(op.now() + tw, Ev::TwExpire(s, gen));
            }
        }
        op.trace_exit(TraceLabel::Softirq);
        let span = op.commit(&mut self.ctx.cpu);
        self.transmit(CoreId(core), tx, span.end);
        self.arm_rtos();
        for pid in wakes {
            self.wake(pid, span.end);
        }
        if self.softirq.pending(core as usize) > 0 && self.softirq.re_raise(core as usize) {
            self.events.push(span.end, Ev::Softirq(core));
        }
    }

    fn on_proc_wake(&mut self, pid_idx: u32) {
        let pid = Pid(pid_idx);
        if let Some(t) = self.stalled_until(self.procs.get(pid).core) {
            // Leave wake_pending set: the deferred event below is the
            // wakeup, so no new ones should be queued meanwhile.
            self.events.push(t, Ev::ProcWake(pid_idx));
            return;
        }
        self.procs.get_mut(pid).wake_pending = false;
        if !self.procs.get(pid).alive {
            return;
        }
        let core = self.procs.get(pid).core;
        let ep = self.eps[pid_idx as usize];
        let mut op = self.ctx.begin(core, self.now);
        op.trace_enter(TraceLabel::ProcWake);
        let mut events = Vec::new();
        op.trace_enter(TraceLabel::SysEpollWait);
        self.os
            .epolls
            .wait(&mut self.ctx, &mut op, ep, EPOLL_BATCH, &mut events);
        op.trace_exit(TraceLabel::SysEpollWait);
        op.check_boundary();
        let mut tx: Vec<Packet> = Vec::new();
        if !events.is_empty() {
            let mut sys = Sys {
                ctx: &mut self.ctx,
                os: &mut self.os,
                stack: &mut self.stack,
                op: &mut op,
                core,
                pid,
                ep,
                local_ip: SERVER_IP,
                tx: &mut tx,
            };
            self.workers[pid_idx as usize].on_events(&mut sys, &events);
        }
        op.trace_exit(TraceLabel::ProcWake);
        let span = op.commit(&mut self.ctx.cpu);
        self.transmit(core, tx, span.end);
        self.arm_rtos();
        if self.os.epolls.pending(ep) > 0 {
            self.wake(pid, span.end);
        }
    }

    /// One edge-tier maintenance tick: every live proxy worker releases
    /// its due failover retries and launches health probes toward
    /// backends without one in flight. Runs as a costed operation on
    /// the worker's own core (probes are syscalls the worker issues).
    fn on_edge_tick(&mut self) {
        let Some(interval) = self.cfg.edge.as_ref().map(|e| e.probe_interval) else {
            return;
        };
        for i in 0..self.workers.len() {
            let pid = Pid(i as u32);
            if !self.procs.get(pid).alive {
                continue;
            }
            let core = self.procs.get(pid).core;
            if self.stalled_until(core).is_some() {
                // A stalled core skips this tick; the next heartbeat
                // retries after the stall heals.
                continue;
            }
            let ep = self.eps[i];
            let mut op = self.ctx.begin(core, self.now);
            op.trace_enter(TraceLabel::ProcWake);
            let mut tx: Vec<Packet> = Vec::new();
            {
                let mut sys = Sys {
                    ctx: &mut self.ctx,
                    os: &mut self.os,
                    stack: &mut self.stack,
                    op: &mut op,
                    core,
                    pid,
                    ep,
                    local_ip: SERVER_IP,
                    tx: &mut tx,
                };
                self.workers[i].on_tick(&mut sys);
            }
            op.trace_exit(TraceLabel::ProcWake);
            let span = op.commit(&mut self.ctx.cpu);
            self.transmit(core, tx, span.end);
            self.arm_rtos();
            if self.os.epolls.pending(ep) > 0 {
                self.wake(pid, span.end);
            }
        }
        self.events.push(self.now + interval, Ev::EdgeTick);
    }

    fn transmit(&mut self, core: CoreId, mut tx: Vec<Packet>, at: Cycles) {
        let half_rtt = self.cfg.rtt / 2;
        let q = self.nic.tx_queue_for_core(core);
        // Burst transmit: the NIC's ECN queue-threshold model marks
        // data segments deep in the burst with CE. With batch offload
        // disabled this is exactly the old per-packet tx loop.
        self.nic.tx_burst(&mut tx, q);
        for pkt in tx {
            self.send_to_peer(at + half_rtt, pkt);
        }
    }

    fn wake(&mut self, pid: Pid, at: Cycles) {
        let p = self.procs.get_mut(pid);
        if p.alive && !p.wake_pending {
            p.wake_pending = true;
            self.events.push(at, Ev::ProcWake(pid.0));
        }
    }

    fn on_to_peer(&mut self, pkt: Packet) {
        if self.active_loss > 0.0
            && self.on_client_wire(&pkt)
            && self.peer_rng.chance(self.active_loss)
        {
            return; // lost on the wire
        }
        let dst = pkt.flow.dst_ip;
        let half_rtt = self.cfg.rtt / 2;
        let mut out = Vec::new();
        if let Some(&b) = self.backend_by_ip.get(&dst) {
            let isn = self.peer_rng.next_u64() as u32;
            self.backends[b].on_packet(&pkt, isn, &mut out);
            for r in out {
                self.send_to_server(self.now + half_rtt, r);
            }
            return;
        }
        let Some(&slot) = self.client_by_ip.get(&dst) else {
            return; // stray packet to a non-existent peer
        };
        let client = &mut self.clients[slot as usize];
        // Ignore packets for a previous (timed-out) attempt.
        if client.idle() || client.flow().src_port != pkt.flow.dst_port {
            return;
        }
        let done = client.on_packet(&pkt, &mut out);
        for r in out {
            self.send_to_server(self.now + half_rtt, r);
        }
        if self.clients[slot as usize].take_hold_started() {
            // The slot parked instead of closing: invalidate the
            // pending connect-timeout/nudge (the hold may far exceed
            // them) and schedule the FIN for the end of the hold.
            self.client_attempt[slot as usize] += 1;
            let attempt = self.client_attempt[slot as usize];
            self.events.push(
                self.now + self.client_hold[slot as usize],
                Ev::ClientRelease(slot, attempt),
            );
        }
        if done {
            if self.open.is_some() {
                if let Some(o) = &mut self.open {
                    o.completed_sessions += 1;
                }
                self.release_slot(slot);
            } else {
                self.events
                    .push(self.now + self.cfg.think_time, Ev::ClientStart(slot));
            }
        }
    }

    fn on_client_start(&mut self, slot: u32) {
        if !self.clients[slot as usize].idle() {
            return;
        }
        let isn = self.peer_rng.next_u64() as u32;
        let syn = self.clients[slot as usize].start(isn);
        self.client_attempt[slot as usize] += 1;
        let attempt = self.client_attempt[slot as usize];
        self.send_to_server(self.now + self.cfg.rtt / 2, syn);
        self.events.push(
            self.now + self.cfg.client_timeout,
            Ev::ClientTimeout(slot, attempt),
        );
        if self.cfg.loss > 0.0 || self.cfg.faults.has_loss_burst() {
            self.events.push(
                self.now + self.nudge_interval(),
                Ev::ClientNudge(slot, attempt),
            );
        }
    }

    fn nudge_interval(&self) -> Cycles {
        // A bit above the server's RTO: let the server recover first.
        self.stack.config().rto * 4
    }

    fn on_client_nudge(&mut self, slot: u32, attempt: u64) {
        if self.client_attempt[slot as usize] != attempt || self.clients[slot as usize].idle() {
            return;
        }
        let mut out = Vec::new();
        self.clients[slot as usize].nudge(&mut out);
        for pkt in out {
            self.send_to_server(self.now + self.cfg.rtt / 2, pkt);
        }
        self.events.push(
            self.now + self.nudge_interval(),
            Ev::ClientNudge(slot, attempt),
        );
    }

    /// The idle hold of a long-lived session ends: the client sends its
    /// FIN and the normal close handshake (with a fresh timeout guard)
    /// takes over.
    fn on_client_release(&mut self, slot: u32, attempt: u64) {
        if self.client_attempt[slot as usize] != attempt {
            return;
        }
        let mut out = Vec::new();
        if self.clients[slot as usize].release_hold(&mut out) {
            for pkt in out {
                self.send_to_server(self.now + self.cfg.rtt / 2, pkt);
            }
            let timeout = self
                .open
                .as_ref()
                .map_or(self.cfg.client_timeout, |o| o.cfg.connect_timeout);
            self.events
                .push(self.now + timeout, Ev::ClientTimeout(slot, attempt));
        }
    }

    fn on_client_timeout(&mut self, slot: u32, attempt: u64) {
        if self.client_attempt[slot as usize] != attempt {
            return;
        }
        if let Some(rst) = self.clients[slot as usize].abort() {
            self.timeouts += 1;
            self.send_to_server(self.now + self.cfg.rtt / 2, rst);
            if self.open.is_some() {
                // Open loop: the human behind the connection gives up;
                // the slot turns to whatever arrival is waiting.
                if let Some(o) = &mut self.open {
                    o.abandoned_connect += 1;
                }
                self.release_slot(slot);
            } else {
                self.events.push(self.now, Ev::ClientStart(slot));
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Length of one throughput-sampling window.
    fn sample_window_cycles(&self) -> Cycles {
        if self.cfg.faults.sample_window > 0 {
            self.cfg.faults.sample_window
        } else {
            // Default: 20 windows across the measured interval.
            (self.cfg.measure / 20).max(1)
        }
    }

    fn on_fault(&mut self, idx: u32) {
        let ev = self.cfg.faults.events[idx as usize];
        self.fault_active[idx as usize] = true;
        match ev.kind {
            FaultKind::WorkerCrash { core } => {
                let core = CoreId(core);
                let port = self.cfg.app.port();
                if let Some(pid) = self.procs.on_core(core) {
                    self.procs.kill(pid);
                    let mut op = self.ctx.begin(core, self.now);
                    let out = self.stack.on_worker_crash(
                        &mut self.ctx,
                        &mut self.os,
                        &mut op,
                        port,
                        core,
                        pid,
                    );
                    let span = op.commit(&mut self.ctx.cpu);
                    self.transmit(core, out.replies, span.end);
                    for pid in out.wakeups {
                        self.wake(pid, span.end);
                    }
                }
            }
            FaultKind::QueueFailure { queue } => self.nic.fail_queue(QueueId(queue)),
            FaultKind::CoreStall { core } => {
                let until = ev.heal_at.unwrap_or(self.cfg.warmup + self.cfg.measure);
                self.stalled[core as usize] = Some(until);
            }
            FaultKind::LossBurst { loss } => self.active_loss = loss,
            FaultKind::SynFlood { .. } => {
                self.events.push(self.now, Ev::FloodTick(idx));
            }
            FaultKind::BackendCrash { backend } => {
                if let Some(b) = self.backends.get_mut(usize::from(backend)) {
                    b.crash();
                }
            }
        }
    }

    fn on_heal(&mut self, idx: u32) {
        let ev = self.cfg.faults.events[idx as usize];
        self.fault_active[idx as usize] = false;
        match ev.kind {
            FaultKind::WorkerCrash { core } => self.spawn_worker(CoreId(core)),
            FaultKind::QueueFailure { queue } => self.nic.heal_queue(QueueId(queue)),
            FaultKind::CoreStall { core } => self.stalled[core as usize] = None,
            FaultKind::LossBurst { .. } => self.active_loss = self.cfg.loss,
            FaultKind::SynFlood { .. } => {}
            FaultKind::BackendCrash { backend } => {
                if let Some(b) = self.backends.get_mut(usize::from(backend)) {
                    b.heal();
                }
            }
        }
    }

    /// One burst of spoofed SYNs from addresses no client owns, so the
    /// handshakes never complete — the classic SYN-flood shape.
    fn on_flood_tick(&mut self, idx: u32) {
        if !self.fault_active[idx as usize] {
            return;
        }
        let FaultKind::SynFlood { syns_per_tick } = self.cfg.faults.events[idx as usize].kind
        else {
            return;
        };
        let port = self.cfg.app.port();
        for _ in 0..syns_per_tick {
            let n = self.flood_seq;
            self.flood_seq = self.flood_seq.wrapping_add(1);
            // 172.16/12 space: never a client IP, so replies (SYN-ACKs,
            // cookies) vanish on the wire and loss doesn't apply.
            let ip = Ipv4Addr::new(
                172,
                16 + ((n >> 14) & 0x0f) as u8,
                ((n >> 8) & 0x3f) as u8,
                (n & 0xff) as u8,
            );
            let src_port = 1024 + (n % 60_000) as u16;
            let flow = FlowTuple::new(ip, src_port, SERVER_IP, port);
            let isn = self.peer_rng.next_u64() as u32;
            let syn = Packet::new(flow, TcpFlags::SYN).with_seq(isn);
            self.events.push(self.now, Ev::ToServer(syn));
        }
        self.events.push(
            self.now + usecs_to_cycles(FLOOD_TICK_USECS),
            Ev::FloodTick(idx),
        );
    }

    fn on_sample(&mut self) {
        let completed: u64 = self.clients.iter().map(|c| c.completed).sum();
        let resets: u64 = self.clients.iter().map(|c| c.resets).sum();
        let timeouts = self.timeouts;
        let s = self.stack.stats();
        // Server-side refusals: SYNs answered with RST or dropped for
        // backlog/memory pressure. Stack stats reset at the warmup
        // boundary, so a window spanning it falls back to the absolute
        // value (`checked_sub`).
        let refusals = s.syn_refusals + s.syn_drops + s.mem_pressure_drops;
        let prev = self.sample_cursor;
        self.samples.push(WindowSample {
            start: prev.at,
            end: self.now,
            completed: completed - prev.completed,
            resets: resets - prev.resets,
            timeouts: timeouts - prev.timeouts,
            refusals: refusals.checked_sub(prev.refusals).unwrap_or(refusals),
        });
        self.sample_cursor = SampleCursor {
            at: self.now,
            completed,
            resets,
            timeouts,
            refusals,
        };
        self.events
            .push(self.now + self.sample_window_cycles(), Ev::Sample);
    }

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------

    fn snapshot(&mut self) -> Snapshot {
        self.ctx.locks.reset_stats();
        self.ctx.cache.reset_stats();
        self.stack.reset_stats();
        let cores = self.cfg.cores as usize;
        let mut class = vec![[0u64; CycleClass::COUNT]; cores];
        let mut busy = vec![0u64; cores];
        for c in 0..cores {
            busy[c] = self.ctx.cpu.busy_cycles(CoreId(c as u16));
            for (i, cl) in CycleClass::ALL.iter().enumerate() {
                class[c][i] = self.ctx.cpu.class_cycles(CoreId(c as u16), *cl);
            }
        }
        Snapshot {
            at: self.now,
            busy,
            class,
            completed: self.clients.iter().map(|c| c.completed).sum(),
            responses: self.clients.iter().map(|c| c.responses).sum(),
            resets: self.clients.iter().map(|c| c.resets).sum(),
            timeouts: self.timeouts,
            bytes: self.clients.iter().map(|c| c.bytes_received).sum(),
        }
    }

    fn report(self, snap: Snapshot, end: Cycles) -> RunReport {
        // Conservation audit at drain: whatever sockets remain must
        // account for every modeled byte and bucket still in the
        // ledger (strict runs panic on a mismatch).
        if let Some(detail) = self.stack.mem_imbalance() {
            self.checker.invariant_violation("mem_account", 0, detail);
        }
        let window = end.saturating_sub(snap.at).max(1);
        let secs = cycles_to_secs(window);
        let cores = self.cfg.cores as usize;

        let completed: u64 = self.clients.iter().map(|c| c.completed).sum::<u64>() - snap.completed;
        let responses: u64 = self.clients.iter().map(|c| c.responses).sum::<u64>() - snap.responses;
        let resets: u64 = self.clients.iter().map(|c| c.resets).sum::<u64>() - snap.resets;
        let timeouts = self.timeouts - snap.timeouts;

        let mut core_utilization = Vec::with_capacity(cores);
        let mut class_delta = [0u64; CycleClass::COUNT];
        let mut busy_total = 0u64;
        for c in 0..cores {
            let busy = self.ctx.cpu.busy_cycles(CoreId(c as u16)) - snap.busy[c];
            busy_total += busy;
            core_utilization.push((busy as f64 / window as f64).min(1.0));
            for (i, cl) in CycleClass::ALL.iter().enumerate() {
                class_delta[i] +=
                    self.ctx.cpu.class_cycles(CoreId(c as u16), *cl) - snap.class[c][i];
            }
        }
        let cycle_shares: Vec<(String, f64)> = CycleClass::ALL
            .iter()
            .enumerate()
            .map(|(i, cl)| {
                let share = if busy_total == 0 {
                    0.0
                } else {
                    class_delta[i] as f64 / busy_total as f64
                };
                (cl.name().to_string(), share)
            })
            .collect();

        let robustness = if self.cfg.faults.is_empty() {
            None
        } else {
            let cycles_per_sec = 1.0 / cycles_to_secs(1);
            Some(RobustnessReport::analyze(
                &self.cfg.faults,
                self.sample_window_cycles(),
                self.samples.clone(),
                cycles_per_sec,
            ))
        };

        let load = self.open.as_ref().map(|o| LoadReport {
            offered: o.offered,
            admitted: o.admitted,
            queued_admissions: o.queued_admissions,
            abandoned_wait: o.abandoned_wait,
            abandoned_connect: o.abandoned_connect,
            completed_sessions: o.completed_sessions,
            peak_backlog: o.peak_backlog,
            offered_cps: o.offered as f64 / cycles_to_secs(end),
            schedule_digest: o.digest.hex(),
        });

        let bulk = self.cfg.data_plane.map(|dp| {
            let payload_bytes =
                self.clients.iter().map(|c| c.bytes_received).sum::<u64>() - snap.bytes;
            BulkReport {
                cc: dp.cc.name().to_string(),
                response_bytes: dp.response_bytes,
                payload_bytes,
                goodput_gbps: payload_bytes as f64 * 8.0 / secs / 1e9,
            }
        });

        let edge = self.cfg.edge.as_ref().map(|_| {
            let mut c = sim_apps::EdgeCounters::default();
            for w in &self.workers {
                if let Some(wc) = w.edge_counters() {
                    c.merge(&wc);
                }
            }
            EdgeReport {
                early_dropped: self.nic.stats().early_dropped,
                probes_sent: c.probes_sent,
                probe_failures: c.probe_failures,
                retried: c.retried,
                failed_over: c.failed_over,
                lost: c.lost,
                readmissions: c.readmissions,
                reused_conns: c.reused_conns,
            }
        });

        let stack_stats = self.stack.stats();
        let steering = match self.cfg.steering {
            SteeringMode::Rss => "rss",
            SteeringMode::FdirAtr => "fdir_atr",
            SteeringMode::FdirPerfect => "fdir_perfect",
        };

        RunReport {
            kernel: self.cfg.kernel.label().to_string(),
            app: self.cfg.app.label().to_string(),
            cores: self.cfg.cores,
            steering: steering.to_string(),
            seed: self.cfg.seed,
            config_hash: self.cfg.config_digest(),
            latency: self.tracer.latency(usecs_to_cycles(1.0) as f64),
            checks: self.checker.report(),
            robustness,
            measure_secs: secs,
            throughput_cps: completed as f64 / secs,
            requests_per_sec: responses as f64 / secs,
            completed,
            responses,
            resets,
            timeouts,
            core_utilization,
            locks: lock_reports(&self.ctx.locks.all_stats()),
            l3_miss_rate: self.ctx.cache.stats().miss_rate(),
            local_packet_proportion: stack_stats.local_packet_proportion(),
            cycle_shares,
            stack: stack_stats,
            avg_listen_walk: stack_stats.avg_listen_walk(),
            events: self.events.delivered(),
            live_sockets: self.stack.socks.live_count(),
            load,
            bulk,
            edge,
            mem: self.stack.mem_report(),
        }
    }
}

#[derive(Debug)]
struct Snapshot {
    at: Cycles,
    busy: Vec<Cycles>,
    class: Vec<[Cycles; CycleClass::COUNT]>,
    completed: u64,
    responses: u64,
    resets: u64,
    timeouts: u64,
    bytes: u64,
}
