//! # Fastsocket reproduction
//!
//! A full-system simulation of *Scalable Kernel TCP Design and
//! Implementation for Short-Lived Connections* (ASPLOS 2016): the
//! Fastsocket partitioned TCP stack (Local Listen Table, Local
//! Established Table, Receive Flow Deliver, Fastsocket-aware VFS)
//! together with the two baselines the paper compares against (stock
//! Linux 2.6.32 and Linux 3.13 with `SO_REUSEPORT`), running nginx-like
//! and HAProxy-like workloads on a simulated multicore server with an
//! Intel-82599-style NIC.
//!
//! The crate's central type is [`Simulation`]: configure a kernel, an
//! application and a workload, run it, and read a [`RunReport`] with
//! connections/sec, per-core utilization, lockstat contention counts,
//! L3 miss rates and the local-packet proportion — the exact metrics
//! the paper's evaluation section reports.
//!
//! ```no_run
//! use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
//!
//! let config = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 8)
//!     .warmup_secs(0.2)
//!     .measure_secs(1.0);
//! let report = Simulation::new(config).run();
//! println!("{} connections/sec", report.throughput_cps);
//! ```
//!
//! The `fastsocket-bench` crate regenerates every table and figure of
//! the paper on top of this API; see `EXPERIMENTS.md` at the repository
//! root for paper-vs-measured results.

pub mod config;
pub mod experiments;
pub mod par;
pub mod report;
pub mod sim;

pub use config::{AppSpec, DataPlaneConfig, KernelSpec, ParConfig, SimConfig};
pub use par::{effective_lanes, run_sharded};
pub use report::{EdgeReport, LockReport, RunReport};
pub use sim::Simulation;
pub use sim_check::{CheckReport, ShardClass, ShardReport};
pub use sim_fault::{FaultEvent, FaultKind, FaultRecord, FaultSchedule, RobustnessReport};
pub use sim_load::{
    ArrivalProcess, LoadReport, LongLivedMix, MmppPhase, OpenLoopConfig, RateProfile, SessionDist,
    SizeDist, DEFAULT_DIURNAL,
};
pub use sim_res::{MemConfig, MemReport, MemStats, PressureLevel};
pub use tcp_stack::FaultInjection;
