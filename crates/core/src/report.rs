//! Run reports: everything the paper's evaluation section measures.

use serde::{Deserialize, Serialize};
use sim_check::CheckReport;
use sim_core::{CycleClass, Cycles};
use sim_fault::RobustnessReport;
use sim_load::LoadReport;
use sim_mem::CacheStats;
use sim_res::MemReport;
use sim_sync::{ClassStats, LockClass};
use sim_trace::LatencyReport;
use tcp_stack::StackStats;

/// Lockstat-style row for one lock class (Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LockReport {
    /// The lock name as Table 1 prints it.
    pub name: String,
    /// Acquisitions during the measured window.
    pub acquisitions: u64,
    /// Contended acquisitions (lockstat `contentions`).
    pub contentions: u64,
    /// Cycles spent spinning.
    pub wait_cycles: Cycles,
    /// Total cycles the lock was reserved (held + handoff storms).
    pub reserved_cycles: Cycles,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Kernel label (`base-2.6.32`, `linux-3.13`, `fastsocket`, ...).
    pub kernel: String,
    /// Application label (`nginx`, `haproxy`).
    pub app: String,
    /// Server core count.
    pub cores: u16,
    /// NIC steering label (`rss`, `fdir_atr`, `fdir_perfect`).
    pub steering: String,
    /// RNG seed the run used (reproduce with `SimConfig::seed`).
    pub seed: u64,
    /// FNV-1a digest of the full configuration
    /// ([`SimConfig::config_digest`](crate::SimConfig::config_digest)).
    pub config_hash: String,
    /// Connection latency percentiles over the measured window —
    /// `None` unless the run had tracing enabled (`SimConfig::trace`).
    pub latency: Option<LatencyReport>,
    /// Sanitizer verdict (lockdep, lockset races, partition lints) —
    /// `None` unless the run had checking enabled (`SimConfig::check`).
    pub checks: Option<CheckReport>,
    /// Degrade-and-recover analysis — `None` unless the run had a
    /// fault schedule installed (`SimConfig::faults`).
    pub robustness: Option<RobustnessReport>,
    /// Measured window length in (simulated) seconds.
    pub measure_secs: f64,
    /// Connections per second completed by the clients — the paper's
    /// throughput metric.
    pub throughput_cps: f64,
    /// Requests (responses) per second — differs from connections/sec
    /// only for keep-alive (long-lived) workloads.
    pub requests_per_sec: f64,
    /// Connections completed in the window.
    pub completed: u64,
    /// Responses received in the window.
    pub responses: u64,
    /// Client-observed resets in the window.
    pub resets: u64,
    /// Client-side connect timeouts in the window.
    pub timeouts: u64,
    /// Per-core utilization over the window, in `[0, 1]`.
    pub core_utilization: Vec<f64>,
    /// Lockstat rows, one per lock class.
    pub locks: Vec<LockReport>,
    /// L3 cache miss rate over tracked accesses.
    pub l3_miss_rate: f64,
    /// Fraction of active-connection packets NIC-delivered to the
    /// owning core (Figure 5b).
    pub local_packet_proportion: f64,
    /// Share of busy cycles per [`CycleClass`], by class name.
    pub cycle_shares: Vec<(String, f64)>,
    /// Raw TCP-stack counters.
    pub stack: StackStats,
    /// Average listen-bucket entries walked per lookup.
    pub avg_listen_walk: f64,
    /// Simulation events processed (diagnostics).
    pub events: u64,
    /// Sockets still live when the run ended (listen sockets plus
    /// in-flight connections; a per-connection leak would show here).
    pub live_sockets: u32,
    /// Open-loop load accounting — `None` for closed-loop runs, which
    /// also keeps their serialized form (and thus
    /// [`results_digest`](RunReport::results_digest)) byte-identical to
    /// before the field existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub load: Option<LoadReport>,
    /// Bulk-transfer accounting — `None` for 1-packet runs
    /// (`SimConfig::data_plane` unset), which keeps their serialized
    /// form byte-identical to before the field existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub bulk: Option<BulkReport>,
    /// Edge-tier resilience accounting — `None` unless the run armed
    /// `SimConfig::edge`, which keeps legacy serialized forms
    /// byte-identical to before the field existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub edge: Option<EdgeReport>,
    /// Memory-accounting and pressure report — `None` unless the run
    /// armed `SimConfig::mem`, which keeps legacy serialized forms
    /// byte-identical to before the field existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mem: Option<MemReport>,
}

/// Goodput accounting for sliding-window bulk-transfer runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BulkReport {
    /// Congestion-control algorithm label (`newreno`, `cubic`,
    /// `dctcp`).
    pub cc: String,
    /// Response body size per request, in bytes.
    pub response_bytes: u32,
    /// Response payload bytes delivered to clients in the measured
    /// window.
    pub payload_bytes: u64,
    /// Goodput over the measured window, in Gbps (payload bits only).
    pub goodput_gbps: f64,
}

/// Resilience accounting for edge-tier runs: the proxy workers'
/// merged [`EdgeCounters`](sim_apps::EdgeCounters) plus the NIC's
/// pre-steering drop count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeReport {
    /// Hostile packets discarded by the NIC early-drop stage before
    /// they could touch listen locks.
    pub early_dropped: u64,
    /// Active health probes the proxy workers sent.
    pub probes_sent: u64,
    /// Probes that failed (connect refused or reset).
    pub probe_failures: u64,
    /// Client requests re-dispatched after a backend error.
    pub retried: u64,
    /// Retries that landed on a *different* backend than the failed
    /// attempt — the failover count proper.
    pub failed_over: u64,
    /// Client requests dropped after the retry budget ran out.
    pub lost: u64,
    /// Down→Up health transitions (backends re-admitted after
    /// recovery).
    pub readmissions: u64,
    /// Backend connections served from the idle pool instead of a
    /// fresh connect.
    pub reused_conns: u64,
}

impl RunReport {
    /// FNV-1a digest over the report's full JSON serialization. Two runs
    /// of the same configuration must produce the same digest regardless
    /// of the event-queue backend — `tests/system_scaling.rs` holds the
    /// schedulers to exactly that.
    pub fn results_digest(&self) -> String {
        let json = serde_json::to_string(self).expect("RunReport serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Mean core utilization.
    pub fn avg_utilization(&self) -> f64 {
        if self.core_utilization.is_empty() {
            0.0
        } else {
            self.core_utilization.iter().sum::<f64>() / self.core_utilization.len() as f64
        }
    }

    /// (min, max) core utilization — Figure 3's whiskers.
    pub fn utilization_spread(&self) -> (f64, f64) {
        let min = self
            .core_utilization
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .core_utilization
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if self.core_utilization.is_empty() {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }

    /// Contention count for one lock class, by Table 1 name.
    pub fn lock_contentions(&self, name: &str) -> u64 {
        self.locks
            .iter()
            .find(|l| l.name == name)
            .map_or(0, |l| l.contentions)
    }

    /// Share of all busy cycles spent in one class, by name.
    pub fn cycle_share(&self, class: CycleClass) -> f64 {
        self.cycle_shares
            .iter()
            .find(|(n, _)| n == class.name())
            .map_or(0.0, |(_, s)| *s)
    }

    /// Share of busy cycles wasted spinning on locks — the paper's
    /// "spin lock consumes N% of total CPU cycles".
    pub fn lock_spin_share(&self) -> f64 {
        self.cycle_share(CycleClass::LockSpin)
    }

    /// `netstat -s`-style TcpExt counter block, so chaos runs are
    /// debuggable from the `.txt` artifacts alone.
    pub fn netstat_ext(&self) -> String {
        let s = &self.stack;
        let mut out = String::from("TcpExt:\n");
        for (label, v) in [
            ("passive connections established", s.passive_established),
            ("connections reset by client", self.resets),
            ("client connect timeouts", self.timeouts),
            ("RSTs sent", s.rst_sent),
            ("SYNs refused (no listener)", s.syn_refusals),
            ("SYNs dropped (backlog full)", s.syn_drops),
            ("SYNs dropped (memory pressure)", s.mem_pressure_drops),
            ("SYN cookies sent", s.syn_cookies_sent),
            ("SYN cookies validated", s.syn_cookies_ok),
            ("segments retransmitted", s.retransmits),
            ("connections aborted on retries", s.rtx_abandoned),
            ("no-match drops", s.no_match_drops),
            ("TIME_WAIT sockets recycled", s.tw_reused),
        ] {
            out.push_str(&format!("    {v} {label}\n"));
        }
        if let Some(dp) = &s.dp {
            for (label, v) in [
                (
                    "segments fast-retransmitted (dup ACKs)",
                    dp.fast_retransmits,
                ),
                ("out-of-order segments dropped", dp.out_of_order_segments),
                ("ECN echoes consumed", dp.ecn_echoes),
                ("payload bytes streamed", dp.bytes_streamed),
            ] {
                out.push_str(&format!("    {v} {label}\n"));
            }
        }
        if let Some(m) = &self.mem {
            for (label, v) in [
                ("peak modeled bytes charged", m.peak_bytes),
                ("peak modeled concurrent sockets", m.peak_sockets),
                ("peak modeled TIME_WAIT buckets", m.peak_time_wait),
                ("peak modeled orphans", m.peak_orphans),
                ("SYNs dropped at tcp_mem high", m.stats.pressure_syn_drops),
                ("embryonic connections pruned", m.stats.embryos_pruned),
                (
                    "TIME_WAIT buckets force-recycled",
                    m.stats.tw_forced_recycles,
                ),
                ("orphans reset at tcp_max_orphans", m.stats.orphans_killed),
                ("window advertisements clamped", m.stats.window_clamps),
                ("receive queues collapsed", m.stats.buffer_reclaims),
            ] {
                out.push_str(&format!("    {v} {label}\n"));
            }
        }
        if let Some(e) = &self.edge {
            for (label, v) in [
                ("packets early-dropped pre-steering", e.early_dropped),
                ("health probes sent", e.probes_sent),
                ("health probes failed", e.probe_failures),
                ("requests retried after backend error", e.retried),
                ("requests failed over to another backend", e.failed_over),
                ("requests lost (retry budget exhausted)", e.lost),
                ("backends re-admitted after recovery", e.readmissions),
                ("backend connections reused from pool", e.reused_conns),
            ] {
                out.push_str(&format!("    {v} {label}\n"));
            }
        }
        out
    }
}

/// Builds the lockstat rows from raw class stats.
pub fn lock_reports(all: &[(LockClass, ClassStats)]) -> Vec<LockReport> {
    all.iter()
        .map(|(class, s)| LockReport {
            name: class.name().to_string(),
            acquisitions: s.acquisitions,
            contentions: s.contentions,
            wait_cycles: s.wait_cycles,
            reserved_cycles: s.hold_cycles,
        })
        .collect()
}

/// Computes the miss rate from cache stats (helper for reports).
pub fn miss_rate(stats: &CacheStats) -> f64 {
    stats.miss_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            kernel: "fastsocket".into(),
            app: "nginx".into(),
            cores: 4,
            steering: "rss".into(),
            seed: 0xfa57_50c7,
            config_hash: "0123456789abcdef".into(),
            latency: None,
            checks: None,
            robustness: None,
            measure_secs: 1.0,
            throughput_cps: 100_000.0,
            requests_per_sec: 100_000.0,
            completed: 100_000,
            responses: 100_000,
            resets: 0,
            timeouts: 0,
            core_utilization: vec![0.5, 0.6, 0.4, 0.7],
            locks: vec![LockReport {
                name: "dcache_lock".into(),
                acquisitions: 10,
                contentions: 3,
                wait_cycles: 100,
                reserved_cycles: 1_000,
            }],
            l3_miss_rate: 0.07,
            local_packet_proportion: 1.0,
            cycle_shares: vec![("lock_spin".into(), 0.05), ("app_work".into(), 0.2)],
            stack: StackStats::default(),
            avg_listen_walk: 1.0,
            events: 42,
            live_sockets: 5,
            load: None,
            bulk: None,
            edge: None,
            mem: None,
        }
    }

    #[test]
    fn utilization_helpers() {
        let r = report();
        assert!((r.avg_utilization() - 0.55).abs() < 1e-12);
        assert_eq!(r.utilization_spread(), (0.4, 0.7));
    }

    #[test]
    fn lock_and_share_lookups() {
        let r = report();
        assert_eq!(r.lock_contentions("dcache_lock"), 3);
        assert_eq!(r.lock_contentions("missing"), 0);
        assert!((r.lock_spin_share() - 0.05).abs() < 1e-12);
        assert_eq!(r.cycle_share(CycleClass::Vfs), 0.0);
    }

    #[test]
    fn report_serializes() {
        let json = serde_json::to_string(&report()).unwrap();
        assert!(json.contains("fastsocket"));
        assert!(json.contains("dcache_lock"));
    }

    #[test]
    fn netstat_ext_lists_cookie_and_refusal_counters() {
        let mut r = report();
        r.stack.syn_cookies_sent = 12;
        r.stack.syn_refusals = 3;
        r.stack.mem_pressure_drops = 4;
        let text = r.netstat_ext();
        assert!(text.starts_with("TcpExt:"));
        assert!(text.contains("12 SYN cookies sent"));
        assert!(text.contains("3 SYNs refused (no listener)"));
        assert!(text.contains("4 SYNs dropped (memory pressure)"));
    }

    #[test]
    fn netstat_ext_gates_data_plane_rows() {
        let mut r = report();
        assert!(
            !r.netstat_ext().contains("fast-retransmitted"),
            "no data-plane rows without data-plane counters"
        );
        r.stack.dp_mut().fast_retransmits = 7;
        r.stack.dp_mut().ecn_echoes = 9;
        let text = r.netstat_ext();
        assert!(text.contains("7 segments fast-retransmitted (dup ACKs)"));
        assert!(text.contains("9 ECN echoes consumed"));
    }

    #[test]
    fn report_digest_unchanged_by_absent_bulk() {
        let a = report();
        let d = a.results_digest();
        let mut b = report();
        b.bulk = Some(BulkReport {
            cc: "cubic".into(),
            response_bytes: 65_536,
            payload_bytes: 1 << 30,
            goodput_gbps: 8.6,
        });
        assert_ne!(d, b.results_digest());
        assert!(!serde_json::to_string(&a).unwrap().contains("bulk"));
    }

    #[test]
    fn report_digest_unchanged_by_absent_edge() {
        let a = report();
        let d = a.results_digest();
        let mut b = report();
        b.edge = Some(EdgeReport {
            early_dropped: 100,
            probes_sent: 8,
            probe_failures: 2,
            retried: 3,
            failed_over: 3,
            lost: 0,
            readmissions: 1,
            reused_conns: 40,
        });
        assert_ne!(d, b.results_digest());
        assert!(!serde_json::to_string(&a).unwrap().contains("edge"));
        let text = b.netstat_ext();
        assert!(text.contains("100 packets early-dropped pre-steering"));
        assert!(text.contains("3 requests failed over to another backend"));
        assert!(text.contains("0 requests lost (retry budget exhausted)"));
        assert!(
            !a.netstat_ext().contains("early-dropped"),
            "no edge rows without an edge report"
        );
    }

    #[test]
    fn report_digest_unchanged_by_absent_mem() {
        let a = report();
        let d = a.results_digest();
        let mut b = report();
        b.mem = Some(MemReport {
            budget_bytes: 1 << 30,
            scale: 16,
            peak_bytes: 1 << 29,
            peak_sockets: 1_048_576,
            peak_embryos: 4_096,
            peak_time_wait: 180_000,
            peak_orphans: 64,
            stats: sim_res::MemStats {
                pressure_syn_drops: 5,
                tw_forced_recycles: 7,
                ..sim_res::MemStats::default()
            },
            balanced: true,
        });
        assert_ne!(d, b.results_digest());
        assert!(!serde_json::to_string(&a).unwrap().contains("\"mem\""));
        let text = b.netstat_ext();
        assert!(text.contains("1048576 peak modeled concurrent sockets"));
        assert!(text.contains("7 TIME_WAIT buckets force-recycled"));
        assert!(
            !a.netstat_ext().contains("modeled"),
            "no mem rows without a mem report"
        );
    }
}
