//! Parallel lane-sharded execution of a [`Simulation`].
//!
//! The simulated machine is partitioned into `lanes` equal blocks of
//! cores. Each lane is a fully independent [`Simulation`] — its own
//! event wheel, kernel context, per-core stacks, NIC replica, client
//! slots and RNG streams — and the lanes only interact through
//! explicitly timestamped packets crossing the simulated NIC boundary.
//! Because every cross-lane packet takes at least `rtt/2` cycles of
//! wire latency, a conservative null-message protocol with lookahead
//! horizon `rtt/2` is exact: lanes pump `[T, T+H)` independently,
//! exchange their boundary messages (an empty vector is the null
//! message), and advance.
//!
//! Both executors — [`run_lanes_serial`] on one thread and
//! [`run_lanes_threads`] on one host thread per lane — run the
//! *identical* windowed protocol, so their [`RunReport`]s are
//! bit-identical; the differential oracle in `tests/par_engine.rs`
//! asserts exactly that, with all sanitizers armed inside the lanes.
//!
//! Kernels whose tables are shared across all cores (stock Linux, and
//! `SO_REUSEPORT` without local established tables) have no NIC-only
//! interaction boundary to cut along, so [`effective_lanes`] sends them
//! to the serial engine — the per-kernel `ShardPolicy` is the
//! certification of exactly this property: only the full Fastsocket
//! partition promises core-local state.

use sim_core::{
    cycles_to_secs, run_lanes_serial, run_lanes_threads, usecs_to_cycles, CycleClass, Cycles,
    LaneSchedule, LaneSim,
};
use sim_load::{LoadReport, ScheduleDigest};
use sim_mem::CacheStats;
use sim_nic::SteeringMode;
use tcp_stack::{EstVariant, FaultInjection, ListenVariant, StackStats};

use crate::config::SimConfig;
use crate::report::{lock_reports, BulkReport, RunReport};
use crate::sim::{BoundaryMsg, LaneOutcome, Simulation};

impl LaneSim for Simulation {
    type Msg = BoundaryMsg;

    fn pump(&mut self, until: Cycles) {
        self.lane_pump(until);
    }

    fn drain_outbox(&mut self, buckets: &mut [Vec<BoundaryMsg>]) {
        self.lane_drain_outbox(buckets);
    }

    fn deliver(&mut self, _src: u16, msgs: Vec<BoundaryMsg>, not_before: Cycles) {
        self.lane_deliver(msgs, not_before);
    }
}

/// The lane count `cfg` actually runs with: the largest divisor of
/// `cfg.cores` not exceeding the requested lane count — or 1 (serial
/// legacy engine) when the configuration cannot be partitioned:
///
/// * no `par` block, or fewer than 2 effective lanes;
/// * a kernel without the full Fastsocket partition (shared listen or
///   established tables have cross-core state the NIC boundary cannot
///   isolate — the same property the `ShardPolicy` certifies);
/// * IsoStack's dedicated stack core (cross-core by design);
/// * any fault schedule or fault-injection knob (faults address global
///   core/queue ids);
/// * an armed edge tier (backend health and failover are shared state);
/// * an open-loop population smaller than the lane count.
pub fn effective_lanes(cfg: &SimConfig) -> u16 {
    let Some(p) = cfg.par else {
        return 1;
    };
    let stack = cfg.kernel.resolve(cfg.cores);
    let full_partition = stack.listen == ListenVariant::Local
        && stack.established == EstVariant::Local
        && stack.rfd
        && !cfg.dedicated_stack_core;
    if !full_partition || !cfg.faults.is_empty() || cfg.fault != FaultInjection::None {
        return 1;
    }
    // Edge-tier runs are serial: backend health, failover retries, and
    // fault schedules address shared backend state lanes cannot shard.
    if cfg.edge.is_some() {
        return 1;
    }
    if let Some(o) = &cfg.open_loop {
        if o.population < u32::from(p.lanes.max(1)) {
            return 1;
        }
    }
    let mut best = 1;
    for d in 1..=cfg.cores.min(p.lanes) {
        if cfg.cores.is_multiple_of(d) {
            best = d;
        }
    }
    best
}

/// Runs `cfg` on the lane-sharded engine and merges the per-lane
/// outcomes into one machine-wide [`RunReport`]. Configurations that
/// [`effective_lanes`] resolves to a single lane run on the serial
/// legacy engine instead (same function, so callers need not care).
///
/// The report is bit-identical between the serial and threaded
/// executors: lanes are deterministic given `(seed, lane)`, the window
/// protocol delivers messages in (source lane, emission) order in both,
/// and the merge below folds outcomes in lane-index order.
pub fn run_sharded(cfg: SimConfig) -> RunReport {
    let lanes = effective_lanes(&cfg);
    if lanes <= 1 {
        return Simulation::new(cfg).run();
    }
    let threads = cfg.par.map(|p| p.threads).unwrap_or(false);
    let end = cfg.warmup + cfg.measure;
    // The largest always-safe horizon is the minimum cross-lane
    // latency: every boundary message is stamped `emission + rtt/2`.
    let horizon = cfg
        .par
        .and_then(|p| p.horizon)
        .unwrap_or((cfg.rtt / 2).max(1))
        .max(1);
    let sched = LaneSchedule::new(horizon, end);

    let outcomes: Vec<LaneOutcome> = if threads {
        let builders: Vec<_> = (0..lanes)
            .map(|l| {
                let cfg = cfg.clone();
                move || {
                    let mut lane = Simulation::new_lane(&cfg, l, lanes);
                    lane.lane_start();
                    lane
                }
            })
            .collect();
        run_lanes_threads(builders, sched, |lane| lane.lane_finish(end))
    } else {
        let mut sims: Vec<Simulation> = (0..lanes)
            .map(|l| {
                let mut lane = Simulation::new_lane(&cfg, l, lanes);
                lane.lane_start();
                lane
            })
            .collect();
        run_lanes_serial(&mut sims, sched);
        sims.into_iter().map(|lane| lane.lane_finish(end)).collect()
    };

    merge_outcomes(&cfg, lanes, outcomes, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppSpec, KernelSpec, ParConfig};
    use sim_load::OpenLoopConfig;

    /// Lane RNG streams fork by stable lane id, so the order lanes are
    /// *constructed* in (which is the order their streams are derived
    /// in) must not change the arrival schedules — the property that
    /// makes the threaded executor deterministic under host-thread
    /// scheduling.
    #[test]
    fn permuted_lane_startup_order_keeps_the_schedule_digest() {
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 8)
            .warmup_secs(0.003)
            .measure_secs(0.01)
            .seed(77)
            .open_loop(OpenLoopConfig::poisson(20_000.0).population(64))
            .par(ParConfig::lanes(4).threads(false));
        let lanes = effective_lanes(&cfg);
        assert_eq!(lanes, 4);
        let run = |order: &[u16]| {
            let end = cfg.warmup + cfg.measure;
            let mut slots: Vec<Option<Simulation>> = (0..lanes).map(|_| None).collect();
            for &l in order {
                let mut lane = Simulation::new_lane(&cfg, l, lanes);
                lane.lane_start();
                slots[usize::from(l)] = Some(lane);
            }
            let mut sims: Vec<Simulation> = slots
                .into_iter()
                .map(|s| s.expect("all lanes built"))
                .collect();
            run_lanes_serial(&mut sims, LaneSchedule::new((cfg.rtt / 2).max(1), end));
            let outcomes = sims.into_iter().map(|s| s.lane_finish(end)).collect();
            merge_outcomes(&cfg, lanes, outcomes, end)
        };
        let a = run(&[0, 1, 2, 3]);
        let b = run(&[2, 0, 3, 1]);
        assert_eq!(
            a.load.as_ref().expect("open loop ran").schedule_digest,
            b.load.as_ref().expect("open loop ran").schedule_digest,
            "lane construction order leaked into the arrival schedule"
        );
        assert_eq!(a.results_digest(), b.results_digest());
    }

    /// An armed edge tier forces the serial engine: backend health and
    /// failover retries are shared state no lane partition can own.
    #[test]
    fn edge_tier_forces_serial_execution() {
        let base =
            SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 8).par(ParConfig::lanes(4));
        assert_eq!(effective_lanes(&base), 4);
        let edged = base.edge(sim_apps::edge::EdgeConfig::default());
        assert_eq!(
            effective_lanes(&edged),
            1,
            "edge fault domains must run on the serial engine"
        );
    }
}

/// Folds per-lane outcomes (in lane-index order) into the machine-wide
/// report. Core-indexed data concatenates (lane `l` owns cores
/// `[l*k, (l+1)*k)`); counters sum; sanitizer diagnostics remap their
/// core ids by the lane's offset.
fn merge_outcomes(
    cfg: &SimConfig,
    lanes: u16,
    outcomes: Vec<LaneOutcome>,
    end: Cycles,
) -> RunReport {
    let k = cfg.cores / lanes;
    let secs = cycles_to_secs(end.saturating_sub(cfg.warmup).max(1));

    let mut completed = 0u64;
    let mut responses = 0u64;
    let mut resets = 0u64;
    let mut timeouts = 0u64;
    let mut payload_bytes = 0u64;
    let mut events = 0u64;
    let mut live_sockets = 0u32;
    let mut busy_total = 0u64;
    let mut class_delta = [0u64; CycleClass::COUNT];
    let mut core_utilization = Vec::with_capacity(cfg.cores as usize);
    let mut locks_acc = None;
    let mut cache = CacheStats::default();
    let mut stack = StackStats::default();
    let mut hists = None;
    let mut checks = None;
    let mut load_acc: Option<(LoadReport, ScheduleDigest)> = None;
    let mut mem_acc: Option<sim_res::MemReport> = None;

    for (l, o) in outcomes.into_iter().enumerate() {
        completed += o.completed;
        responses += o.responses;
        resets += o.resets;
        timeouts += o.timeouts;
        payload_bytes += o.payload_bytes;
        events += o.events;
        live_sockets += o.live_sockets;
        busy_total += o.busy_total;
        for (i, d) in o.class_delta.iter().enumerate() {
            class_delta[i] += d;
        }
        core_utilization.extend(o.core_utilization);
        cache.merge(&o.cache);
        stack.merge(&o.stack);
        match &mut locks_acc {
            None => locks_acc = Some(o.locks),
            Some(acc) => {
                for (slot, (_, s)) in acc.iter_mut().zip(o.locks.iter()) {
                    slot.1.merge(s);
                }
            }
        }
        if let Some(h) = o.hists {
            match &mut hists {
                None => hists = Some(h),
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(h.iter()) {
                        a.merge(b);
                    }
                }
            }
        }
        if let Some(c) = o.checks {
            let offset = l as u16 * k;
            match &mut checks {
                None => checks = Some(c),
                Some(acc) => acc.merge(&c, offset),
            }
        }
        if let Some(ll) = o.load {
            let (acc, digest) = load_acc.get_or_insert_with(|| {
                (
                    LoadReport {
                        offered: 0,
                        admitted: 0,
                        queued_admissions: 0,
                        abandoned_wait: 0,
                        abandoned_connect: 0,
                        completed_sessions: 0,
                        peak_backlog: 0,
                        offered_cps: 0.0,
                        schedule_digest: String::new(),
                    },
                    ScheduleDigest::new(),
                )
            });
            acc.offered += ll.offered;
            acc.admitted += ll.admitted;
            acc.queued_admissions += ll.queued_admissions;
            acc.abandoned_wait += ll.abandoned_wait;
            acc.abandoned_connect += ll.abandoned_connect;
            acc.completed_sessions += ll.completed_sessions;
            // Lanes queue independently, so the machine-wide peak is
            // bounded by (and reported as) the sum of per-lane peaks.
            acc.peak_backlog += ll.peak_backlog;
            digest.push(ll.digest);
        }
        if let Some(m) = o.mem {
            // Budgets and peaks re-add across the lane shares;
            // `balanced` stays conjunctive (one unbalanced lane taints
            // the machine).
            match &mut mem_acc {
                None => mem_acc = Some(m),
                Some(acc) => acc.merge(&m),
            }
        }
    }

    let cycle_shares: Vec<(String, f64)> = CycleClass::ALL
        .iter()
        .enumerate()
        .map(|(i, cl)| {
            let share = if busy_total == 0 {
                0.0
            } else {
                class_delta[i] as f64 / busy_total as f64
            };
            (cl.name().to_string(), share)
        })
        .collect();

    let load = load_acc.map(|(mut acc, digest)| {
        acc.offered_cps = acc.offered as f64 / cycles_to_secs(end);
        acc.schedule_digest = digest.hex();
        acc
    });

    let bulk = cfg.data_plane.map(|dp| BulkReport {
        cc: dp.cc.name().to_string(),
        response_bytes: dp.response_bytes,
        payload_bytes,
        goodput_gbps: payload_bytes as f64 * 8.0 / secs / 1e9,
    });

    let locks = locks_acc.unwrap_or_default();
    let steering = match cfg.steering {
        SteeringMode::Rss => "rss",
        SteeringMode::FdirAtr => "fdir_atr",
        SteeringMode::FdirPerfect => "fdir_perfect",
    };
    let latency = hists
        .and_then(|h| sim_trace::LatencyReport::from_histograms(&h, usecs_to_cycles(1.0) as f64));

    RunReport {
        kernel: cfg.kernel.label().to_string(),
        app: cfg.app.label().to_string(),
        cores: cfg.cores,
        steering: steering.to_string(),
        seed: cfg.seed,
        config_hash: cfg.config_digest(),
        latency,
        checks,
        robustness: None,
        measure_secs: secs,
        throughput_cps: completed as f64 / secs,
        requests_per_sec: responses as f64 / secs,
        completed,
        responses,
        resets,
        timeouts,
        core_utilization,
        locks: lock_reports(&locks),
        l3_miss_rate: cache.miss_rate(),
        local_packet_proportion: stack.local_packet_proportion(),
        cycle_shares,
        stack,
        avg_listen_walk: stack.avg_listen_walk(),
        events,
        live_sockets,
        load,
        bulk,
        // Lanes never run with the edge tier armed (`effective_lanes`
        // forces such configurations serial), so nothing to merge.
        edge: None,
        mem: mem_acc,
    }
}
