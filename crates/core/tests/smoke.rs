//! End-to-end smoke tests: the full simulation completes connections
//! under every kernel variant and both applications.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};

fn quick(kernel: KernelSpec, app: AppSpec, cores: u16) -> fastsocket::RunReport {
    let cfg = SimConfig::new(kernel, app, cores)
        .warmup_secs(0.02)
        .measure_secs(0.10)
        .concurrency(u32::from(cores) * 40);
    Simulation::new(cfg).run()
}

#[test]
fn web_fastsocket_completes_connections() {
    let r = quick(KernelSpec::Fastsocket, AppSpec::web(), 2);
    assert!(r.throughput_cps > 1_000.0, "cps={}", r.throughput_cps);
    assert_eq!(r.resets, 0, "no resets expected: {r:?}");
    assert_eq!(r.timeouts, 0);
    // Fastsocket: the partitioned tables contend on nothing.
    assert_eq!(r.lock_contentions("dcache_lock"), 0);
    assert_eq!(r.lock_contentions("ehash.lock"), 0);
}

#[test]
fn web_base_linux_completes_connections() {
    let r = quick(KernelSpec::BaseLinux, AppSpec::web(), 2);
    assert!(r.throughput_cps > 1_000.0, "cps={}", r.throughput_cps);
    assert_eq!(r.resets, 0);
    // The legacy VFS path is exercised.
    let dcache = r.locks.iter().find(|l| l.name == "dcache_lock").unwrap();
    assert!(dcache.acquisitions > 0);
}

#[test]
fn web_linux313_completes_connections() {
    let r = quick(KernelSpec::Linux313, AppSpec::web(), 4);
    assert!(r.throughput_cps > 1_000.0, "cps={}", r.throughput_cps);
    assert!(
        r.avg_listen_walk > 3.5,
        "SO_REUSEPORT walks all copies: {}",
        r.avg_listen_walk
    );
}

#[test]
fn proxy_fastsocket_completes_connections() {
    let r = quick(KernelSpec::Fastsocket, AppSpec::proxy(), 2);
    assert!(r.throughput_cps > 500.0, "cps={}", r.throughput_cps);
    assert_eq!(r.resets, 0, "{r:?}");
    // Active connections exist. Under plain RSS on 2 cores, NIC-level
    // locality is ~1/2 (the "local packet proportion" is measured
    // before RFD's software steering fixes delivery).
    assert!(r.stack.active_established > 0);
    assert!(
        (0.35..0.65).contains(&r.local_packet_proportion),
        "RSS delivers ~1/cores locally: {}",
        r.local_packet_proportion
    );
    // But software steering means no active packet is *processed* on
    // the wrong core: steered = non-local ones.
    assert_eq!(
        r.stack.steered_packets,
        r.stack.active_in_packets - r.stack.active_in_local
    );
}

#[test]
fn proxy_fastsocket_perfect_filtering_is_fully_local() {
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 2)
        .warmup_secs(0.02)
        .measure_secs(0.10)
        .steering(sim_nic::SteeringMode::FdirPerfect)
        .concurrency(80);
    let r = Simulation::new(cfg).run();
    assert!(r.throughput_cps > 500.0);
    assert!(
        r.local_packet_proportion > 0.999,
        "FDir Perfect-Filtering achieves 100% locality: {}",
        r.local_packet_proportion
    );
    assert_eq!(r.stack.steered_packets, 0);
}

#[test]
fn proxy_base_linux_is_not_local() {
    let r = quick(KernelSpec::BaseLinux, AppSpec::proxy(), 4);
    assert!(r.throughput_cps > 500.0, "cps={}", r.throughput_cps);
    assert!(
        r.local_packet_proportion < 0.6,
        "RSS spreads active packets: {}",
        r.local_packet_proportion
    );
}

#[test]
fn deterministic_for_fixed_seed() {
    let a = quick(KernelSpec::Fastsocket, AppSpec::web(), 2);
    let b = quick(KernelSpec::Fastsocket, AppSpec::web(), 2);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.events, b.events);
}

#[test]
fn lossy_wire_recovers_via_retransmission() {
    // 2% client-wire loss: the stack's RTO recovers lost SYN-ACKs,
    // responses and FINs; clients recover their own losses via
    // duplicate-triggered resends (and, rarely, timeouts).
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
        .warmup_secs(0.05)
        .measure_secs(0.3)
        .concurrency(60)
        .loss(0.02);
    let mut cfg = cfg;
    cfg.client_timeout = sim_core::secs_to_cycles(0.1);
    let r = Simulation::new(cfg).run();
    assert!(r.completed > 2_000, "throughput must survive loss: {r:?}");
    assert!(
        r.stack.retransmits > 0,
        "losses must trigger retransmissions: {:?}",
        r.stack
    );
    // Live sockets bounded: loss must not leak connections.
    assert!(r.live_sockets < 400, "leak under loss: {}", r.live_sockets);
}

#[test]
fn keepalive_workload_reuses_connections() {
    let mut cfg = SimConfig::new(KernelSpec::BaseLinux, AppSpec::web(), 2)
        .warmup_secs(0.02)
        .measure_secs(0.15)
        .concurrency(80);
    cfg.workload.requests_per_conn = 32;
    let r = Simulation::new(cfg).run();
    assert!(
        r.responses > 20 * r.completed.max(1),
        "keep-alive must batch requests"
    );
    assert_eq!(r.resets, 0);
    // Long-lived regime: connection churn (and with it, VFS lock
    // traffic) is a small fraction of request throughput.
    assert!(r.requests_per_sec > 10.0 * r.throughput_cps);
}

#[test]
fn rfd_security_shift_is_transparent_end_to_end() {
    // §3.3: randomizing which port bits carry the core id must not
    // change behaviour — full locality and zero resets, with the NIC's
    // perfect filters programmed with the same shifted hash.
    let mut stack = tcp_stack::stack::StackConfig::fastsocket(4);
    stack.rfd_shift = 5;
    let cfg = SimConfig::new(KernelSpec::Custom(Box::new(stack)), AppSpec::proxy(), 4)
        .steering(sim_nic::SteeringMode::FdirPerfect)
        .warmup_secs(0.02)
        .measure_secs(0.1)
        .concurrency(160);
    let r = Simulation::new(cfg).run();
    assert!(r.throughput_cps > 500.0);
    assert_eq!(r.resets, 0);
    assert!(
        r.local_packet_proportion > 0.999,
        "shifted perfect filters stay exact: {}",
        r.local_packet_proportion
    );
}
