//! End-to-end tests for the resilient edge tier: health-checked
//! backend pools, failover retries, connection pooling, and the NIC
//! early-drop stage.

use fastsocket::{AppSpec, FaultSchedule, KernelSpec, RunReport, SimConfig, Simulation};
use sim_apps::edge::EdgeConfig;
use sim_core::secs_to_cycles;

fn edge_cfg(kernel: KernelSpec, edge: EdgeConfig) -> SimConfig {
    SimConfig::new(kernel, AppSpec::proxy(), 2)
        .warmup_secs(0.02)
        .measure_secs(0.10)
        .concurrency(80)
        .edge(edge)
}

fn run(cfg: SimConfig) -> RunReport {
    Simulation::new(cfg).run()
}

#[test]
fn edge_proxy_completes_connections_and_probes() {
    let r = run(edge_cfg(KernelSpec::Fastsocket, EdgeConfig::default()));
    assert!(r.throughput_cps > 500.0, "cps={}", r.throughput_cps);
    assert_eq!(r.resets, 0, "{r:?}");
    assert_eq!(r.timeouts, 0);
    let e = r.edge.as_ref().expect("edge report present");
    assert!(e.probes_sent > 0, "health probes must run: {e:?}");
    assert_eq!(e.probe_failures, 0, "all backends healthy: {e:?}");
    assert_eq!(e.lost, 0, "no requests lost on a healthy tier: {e:?}");
    assert!(
        e.reused_conns > 0,
        "pooling must serve repeat requests from idle conns: {e:?}"
    );
    assert!(
        r.live_sockets < 200,
        "probe/pool sockets must not leak: {}",
        r.live_sockets
    );
}

#[test]
fn edge_without_pooling_connects_per_request() {
    let r = run(edge_cfg(
        KernelSpec::Fastsocket,
        EdgeConfig::default().pooling(0),
    ));
    let e = r.edge.as_ref().expect("edge report present");
    assert_eq!(e.reused_conns, 0, "pooling disabled: {e:?}");
    assert!(r.throughput_cps > 500.0, "cps={}", r.throughput_cps);
    assert_eq!(e.lost, 0);
}

#[test]
fn backend_crash_fails_over_with_zero_lost_requests() {
    // Crash backend 0 mid-measurement and heal it later. With a retry
    // budget >= 1 every request that hits the dead backend must be
    // re-dispatched to a healthy one: zero lost requests end to end.
    let faults =
        FaultSchedule::new().backend_crash(secs_to_cycles(0.04), Some(secs_to_cycles(0.08)), 0);
    let r = run(edge_cfg(KernelSpec::Fastsocket, EdgeConfig::default()).faults(faults));
    let e = r.edge.as_ref().expect("edge report present");
    assert_eq!(
        e.lost, 0,
        "retry budget >= 1 must save every request: {e:?}"
    );
    assert!(e.retried > 0, "the crash must have forced retries: {e:?}");
    assert!(
        e.failed_over > 0,
        "retries must land on another backend: {e:?}"
    );
    assert!(e.probe_failures > 0, "probes must see the crash: {e:?}");
    assert!(
        e.readmissions > 0,
        "the healed backend must be re-admitted: {e:?}"
    );
    assert_eq!(r.timeouts, 0, "clients must never notice: {r:?}");
    assert!(r.robustness.is_some(), "fault schedules score robustness");
}

#[test]
fn backend_failover_is_deterministic_same_seed() {
    let cfg = || {
        edge_cfg(KernelSpec::Fastsocket, EdgeConfig::default())
            .seed(42)
            .faults(FaultSchedule::new().backend_flap(
                secs_to_cycles(0.03),
                secs_to_cycles(0.02),
                secs_to_cycles(0.01),
                2,
                1,
            ))
    };
    let a = run(cfg());
    let b = run(cfg());
    assert_eq!(
        a.results_digest(),
        b.results_digest(),
        "failover under backend flap must be bit-deterministic"
    );
    assert!(a.edge.as_ref().expect("edge").retried > 0);
}

#[test]
fn early_drop_discards_flood_before_the_stack() {
    let flood =
        || FaultSchedule::new().syn_flood(secs_to_cycles(0.03), Some(secs_to_cycles(0.07)), 200);
    let defended = run(edge_cfg(
        KernelSpec::BaseLinux,
        EdgeConfig::default().early_drop(true),
    )
    .syn_cookies(false)
    .faults(flood()));
    let e = defended.edge.as_ref().expect("edge report present");
    assert!(
        e.early_dropped > 1_000,
        "the flood must be dropped pre-steering: {e:?}"
    );
    // With every spoofed SYN discarded in the driver, the listen path
    // never sees the flood: no cookies, no backlog drops.
    assert_eq!(defended.stack.syn_drops, 0, "{:?}", defended.stack);
}
