//! Kernel memory accounting and pressure model for million-connection
//! scale.
//!
//! The paper proves short-lived *churn* scales once the shared tables
//! are partitioned; the sequel question ("Scouting the Path to a
//! Million-Client Server") is what breaks between 500K conn/s and 1M+
//! *concurrent* sockets, where the binding constraint is kernel memory
//! — TCB and buffer bytes, TIME_WAIT and orphan buckets — not lock
//! contention. Linux makes those limits explicit policy:
//!
//! * `tcp_mem = low / pressure / high` page thresholds drive a global
//!   memory-pressure flag that clamps window advertisements and
//!   triggers receive-queue collapse;
//! * `tcp_max_tw_buckets` caps TIME_WAIT sockets, killing the newest
//!   ones instantly on overflow ("time wait bucket table overflow");
//! * `tcp_max_orphans` caps FIN-orphaned sockets (closed fd, live
//!   TCP), resetting the excess ("too many orphaned sockets").
//!
//! This crate is the *ledger* for that policy: per-core
//! [`CoreAccount`]s (TCB bytes, send/recv buffer bytes, embryo /
//! TIME_WAIT / orphan buckets) rolled up into a global
//! [`MemAccounts`] budget with a [`PressureLevel`] derived from the
//! `tcp_mem`-style thresholds. The *reactions* — SYN drops, embryo
//! pruning, window clamping, buffer reclaim, forced TIME_WAIT recycle,
//! orphan killing — live in the TCP stack, which consults
//! [`MemAccounts::level`] and bumps [`MemStats`] counters.
//!
//! Every charge has a matching uncharge; [`MemAccounts::balance`]
//! certifies the ledger drains to zero so a strict-mode invariant can
//! fail the run on any leak.
//!
//! A [`MemConfig::scale`] factor lets one simulated socket stand in
//! for `scale` modeled sockets, so a ladder can model 1M+ concurrent
//! connections against a real RAM budget without 1M simulated client
//! slots.
//!
//! # Example
//!
//! ```
//! use sim_core::CoreId;
//! use sim_res::{MemAccounts, MemConfig, PressureLevel};
//!
//! let mut mem = MemAccounts::new(MemConfig::ram_mb(1), 2);
//! assert_eq!(mem.level(), PressureLevel::Low);
//! mem.charge_embryo(CoreId(0));
//! mem.promote(CoreId(0));
//! mem.charge_recv_buf(CoreId(0), 4096);
//! mem.uncharge_recv_buf(CoreId(0), 4096);
//! mem.enter_time_wait(CoreId(0));
//! mem.leave_time_wait(CoreId(0));
//! assert!(mem.balance().is_ok());
//! ```

use serde::{Deserialize, Serialize};
use sim_core::CoreId;

/// Modeled resident bytes of one embryonic (SYN_RCVD) connection
/// (`struct tcp_request_sock`, rounded).
pub const EMBRYO_BYTES: u64 = 304;
/// Modeled resident bytes of one established TCB (`struct tcp_sock`,
/// rounded — matches the sim-mem cache footprint).
pub const TCB_BYTES: u64 = 1_664;
/// Modeled resident bytes of one TIME_WAIT bucket
/// (`struct tcp_timewait_sock`, rounded).
pub const TW_BYTES: u64 = 208;
/// Modeled skb truesize overhead charged per delivered segment on top
/// of its payload. Receive-queue collapse (`tcp_collapse`) reclaims
/// exactly this slack under pressure: the data stays, the overhead is
/// repacked away.
pub const SKB_OVERHEAD_BYTES: u64 = 256;

/// What the ledger currently holds for one simulated socket. Stored on
/// the TCB by the stack so every teardown path can uncharge exactly
/// what was charged, even after the TCP state was rewritten (an RST
/// turns any state into `Closed` before release).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemCharge {
    /// Nothing charged: accounting is off, or a listen socket.
    #[default]
    None,
    /// An embryonic request-sock charge ([`EMBRYO_BYTES`]).
    Embryo,
    /// A full TCB charge ([`TCB_BYTES`]).
    Tcb,
    /// A TIME_WAIT bucket charge ([`TW_BYTES`]).
    TimeWait,
}

/// Global memory-pressure level, the `tcp_mem` three-zone model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PressureLevel {
    /// Below the `low` threshold: no accounting reactions.
    Low,
    /// Between `pressure` and `high`: clamp window advertisements,
    /// reclaim buffers.
    Pressure,
    /// At or above `high`: additionally drop SYNs and prune embryos.
    High,
}

impl PressureLevel {
    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Low => "low",
            PressureLevel::Pressure => "pressure",
            PressureLevel::High => "high",
        }
    }
}

/// Budget thresholds and bucket caps — the simulated sysctl block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// `tcp_mem[0]`: below this many modeled bytes the subsystem is
    /// quiescent (hysteresis exit point for the pressure flag).
    pub low_bytes: u64,
    /// `tcp_mem[1]`: entering this zone sets the pressure flag.
    pub pressure_bytes: u64,
    /// `tcp_mem[2]`: the hard budget; at or above it SYNs are dropped
    /// and embryos pruned.
    pub high_bytes: u64,
    /// `tcp_max_tw_buckets`: modeled TIME_WAIT sockets beyond this are
    /// recycled instantly instead of waiting out 2*MSL.
    pub max_tw_buckets: u64,
    /// `tcp_max_orphans`: modeled orphans beyond this are reset
    /// instead of finishing a graceful FIN handshake.
    pub max_orphans: u64,
    /// Each simulated socket models this many real sockets; every
    /// charge (bytes and buckets) is multiplied by it.
    pub scale: u32,
}

impl MemConfig {
    /// Budget derived from a modeled RAM size: `high` = the full
    /// budget, `pressure` = 3/4, `low` = 1/2, with bucket caps sized
    /// the way Linux derives its defaults from memory (TIME_WAIT
    /// buckets ≈ budget / 4 KiB, orphans ≈ budget / 64 KiB).
    pub fn ram_bytes(bytes: u64) -> MemConfig {
        MemConfig {
            low_bytes: bytes / 2,
            pressure_bytes: bytes / 4 * 3,
            high_bytes: bytes,
            max_tw_buckets: bytes / 4_096,
            max_orphans: bytes / 65_536,
            scale: 1,
        }
    }

    /// [`MemConfig::ram_bytes`] in mebibytes.
    pub fn ram_mb(mb: u64) -> MemConfig {
        Self::ram_bytes(mb * 1024 * 1024)
    }

    /// Overrides the TIME_WAIT bucket cap.
    pub fn tw_buckets(mut self, cap: u64) -> MemConfig {
        self.max_tw_buckets = cap;
        self
    }

    /// Overrides the orphan cap.
    pub fn orphans(mut self, cap: u64) -> MemConfig {
        self.max_orphans = cap;
        self
    }

    /// Sets the socket modeling scale (see [`MemConfig::scale`]).
    pub fn scaled(mut self, scale: u32) -> MemConfig {
        self.scale = scale.max(1);
        self
    }

    /// Divides the budget across `lanes` equal machine partitions, for
    /// the lane-sharded parallel executor. Thresholds and caps round
    /// down identically for every lane so lane outcomes are
    /// permutation-stable.
    pub fn split(&self, lanes: u16) -> MemConfig {
        let l = u64::from(lanes.max(1));
        MemConfig {
            low_bytes: self.low_bytes / l,
            pressure_bytes: self.pressure_bytes / l,
            high_bytes: self.high_bytes / l,
            max_tw_buckets: self.max_tw_buckets / l,
            max_orphans: self.max_orphans / l,
            scale: self.scale,
        }
    }
}

/// One core's slice of the ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreAccount {
    /// Modeled TCB bytes (established + TIME_WAIT control blocks).
    pub tcb_bytes: u64,
    /// Modeled send-buffer bytes awaiting ACK.
    pub send_buf_bytes: u64,
    /// Modeled receive-buffer bytes awaiting `recv()`.
    pub recv_buf_bytes: u64,
    /// Embryonic (SYN_RCVD) connections.
    pub embryos: u64,
    /// TIME_WAIT buckets.
    pub time_wait: u64,
    /// Orphans (fd closed, TCP still alive).
    pub orphans: u64,
}

impl CoreAccount {
    /// Total modeled bytes charged to this core.
    pub fn bytes(&self) -> u64 {
        self.tcb_bytes + self.send_buf_bytes + self.recv_buf_bytes
    }

    fn is_zero(&self) -> bool {
        *self == CoreAccount::default()
    }
}

/// The rolled-up machine ledger: per-core accounts, cached global
/// totals, watermarks, and the current [`PressureLevel`].
#[derive(Debug, Clone)]
pub struct MemAccounts {
    cfg: MemConfig,
    cores: Vec<CoreAccount>,
    total_bytes: u64,
    sockets: u64,
    embryos: u64,
    time_wait: u64,
    orphans: u64,
    level: PressureLevel,
    peak_bytes: u64,
    peak_sockets: u64,
    peak_embryos: u64,
    peak_time_wait: u64,
    peak_orphans: u64,
}

impl MemAccounts {
    /// Creates an empty ledger over `cores` per-core accounts.
    pub fn new(cfg: MemConfig, cores: usize) -> MemAccounts {
        MemAccounts {
            cfg,
            cores: vec![CoreAccount::default(); cores.max(1)],
            total_bytes: 0,
            sockets: 0,
            embryos: 0,
            time_wait: 0,
            orphans: 0,
            level: PressureLevel::Low,
            peak_bytes: 0,
            peak_sockets: 0,
            peak_embryos: 0,
            peak_time_wait: 0,
            peak_orphans: 0,
        }
    }

    /// The configured budget.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    fn unit(&self) -> u64 {
        u64::from(self.cfg.scale.max(1))
    }

    fn core(&mut self, core: CoreId) -> &mut CoreAccount {
        let idx = (core.0 as usize) % self.cores.len();
        &mut self.cores[idx]
    }

    /// Recomputes the pressure level with `tcp_mem`-style hysteresis:
    /// the pressure flag set above `pressure_bytes` only clears below
    /// `low_bytes`. Returns the new level when it changed.
    fn relevel(&mut self) -> Option<PressureLevel> {
        let next = if self.total_bytes >= self.cfg.high_bytes {
            PressureLevel::High
        } else if self.total_bytes >= self.cfg.pressure_bytes {
            PressureLevel::Pressure
        } else if self.total_bytes >= self.cfg.low_bytes && self.level >= PressureLevel::Pressure {
            // Hysteresis: stay in the pressure zone until we drain
            // below `low`.
            PressureLevel::Pressure
        } else {
            PressureLevel::Low
        };
        if next == self.level {
            return None;
        }
        self.level = next;
        Some(next)
    }

    fn add_bytes(&mut self, core: CoreId, bytes: u64, slot: fn(&mut CoreAccount) -> &mut u64) {
        let scaled = bytes * self.unit();
        *slot(self.core(core)) += scaled;
        self.total_bytes += scaled;
        self.peak_bytes = self.peak_bytes.max(self.total_bytes);
    }

    fn sub_bytes(&mut self, core: CoreId, bytes: u64, slot: fn(&mut CoreAccount) -> &mut u64) {
        let scaled = bytes * self.unit();
        let s = slot(self.core(core));
        debug_assert!(*s >= scaled, "memory account underflow");
        *s -= scaled;
        self.total_bytes -= scaled;
    }

    /// Charges one embryonic connection (SYN accepted into the syn
    /// queue). Returns the pressure transition, if any.
    pub fn charge_embryo(&mut self, core: CoreId) -> Option<PressureLevel> {
        let n = self.unit();
        self.core(core).embryos += n;
        self.embryos += n;
        self.peak_embryos = self.peak_embryos.max(self.embryos);
        self.add_bytes(core, EMBRYO_BYTES, |c| &mut c.tcb_bytes);
        self.relevel()
    }

    /// Uncharges an embryo that dies without promoting (prune, RST,
    /// retransmit-abandon).
    pub fn uncharge_embryo(&mut self, core: CoreId) -> Option<PressureLevel> {
        let n = self.unit();
        let c = self.core(core);
        debug_assert!(c.embryos >= n, "embryo bucket underflow");
        c.embryos -= n;
        self.embryos -= n;
        self.sub_bytes(core, EMBRYO_BYTES, |c| &mut c.tcb_bytes);
        self.relevel()
    }

    /// Promotes an embryo to a full established TCB (third-ACK
    /// completion): swaps the request-sock charge for a tcp_sock
    /// charge and counts a live socket.
    pub fn promote(&mut self, core: CoreId) -> Option<PressureLevel> {
        let n = self.unit();
        let c = self.core(core);
        debug_assert!(c.embryos >= n, "promotion without embryo charge");
        c.embryos -= n;
        self.embryos -= n;
        self.sub_bytes(core, EMBRYO_BYTES, |c| &mut c.tcb_bytes);
        self.charge_tcb(core)
    }

    /// Charges a full TCB directly (actively-opened client sockets and
    /// cookie-validated promotions that never held an embryo charge).
    pub fn charge_tcb(&mut self, core: CoreId) -> Option<PressureLevel> {
        self.sockets += self.unit();
        self.peak_sockets = self.peak_sockets.max(self.sockets);
        self.add_bytes(core, TCB_BYTES, |c| &mut c.tcb_bytes);
        self.relevel()
    }

    /// Uncharges a full TCB on teardown (from any live state except
    /// TIME_WAIT, which uses [`MemAccounts::leave_time_wait`]).
    pub fn uncharge_tcb(&mut self, core: CoreId) -> Option<PressureLevel> {
        let n = self.unit();
        debug_assert!(self.sockets >= n, "socket count underflow");
        self.sockets -= n;
        self.sub_bytes(core, TCB_BYTES, |c| &mut c.tcb_bytes);
        self.relevel()
    }

    /// Shrinks a TCB to a TIME_WAIT bucket: the tcp_sock is freed, a
    /// timewait-sock bucket is charged.
    pub fn enter_time_wait(&mut self, core: CoreId) -> Option<PressureLevel> {
        let n = self.unit();
        debug_assert!(self.sockets >= n, "TIME_WAIT entry without live socket");
        self.sockets -= n;
        self.sub_bytes(core, TCB_BYTES, |c| &mut c.tcb_bytes);
        let c = self.core(core);
        c.time_wait += n;
        self.time_wait += n;
        self.peak_time_wait = self.peak_time_wait.max(self.time_wait);
        self.add_bytes(core, TW_BYTES, |c| &mut c.tcb_bytes);
        self.relevel()
    }

    /// Releases a TIME_WAIT bucket (2*MSL expiry, tw_reuse recycling,
    /// or forced recycle at the bucket cap).
    pub fn leave_time_wait(&mut self, core: CoreId) -> Option<PressureLevel> {
        let n = self.unit();
        let c = self.core(core);
        debug_assert!(c.time_wait >= n, "TIME_WAIT bucket underflow");
        c.time_wait -= n;
        self.time_wait -= n;
        self.sub_bytes(core, TW_BYTES, |c| &mut c.tcb_bytes);
        self.relevel()
    }

    /// Charges an orphan bucket (fd closed while TCP lives on; the TCB
    /// bytes stay charged — this only tracks the bucket count).
    pub fn charge_orphan(&mut self, core: CoreId) {
        let n = self.unit();
        self.core(core).orphans += n;
        self.orphans += n;
        self.peak_orphans = self.peak_orphans.max(self.orphans);
    }

    /// Releases an orphan bucket (the orphan's TCP finally died).
    pub fn uncharge_orphan(&mut self, core: CoreId) {
        let n = self.unit();
        let c = self.core(core);
        debug_assert!(c.orphans >= n, "orphan bucket underflow");
        c.orphans -= n;
        self.orphans -= n;
    }

    /// Charges send-buffer bytes (queued, not yet fully ACKed).
    pub fn charge_send_buf(&mut self, core: CoreId, bytes: u64) -> Option<PressureLevel> {
        self.add_bytes(core, bytes, |c| &mut c.send_buf_bytes);
        self.relevel()
    }

    /// Uncharges ACKed send-buffer bytes.
    pub fn uncharge_send_buf(&mut self, core: CoreId, bytes: u64) -> Option<PressureLevel> {
        self.sub_bytes(core, bytes, |c| &mut c.send_buf_bytes);
        self.relevel()
    }

    /// Charges receive-buffer bytes (delivered, not yet `recv()`ed).
    pub fn charge_recv_buf(&mut self, core: CoreId, bytes: u64) -> Option<PressureLevel> {
        self.add_bytes(core, bytes, |c| &mut c.recv_buf_bytes);
        self.relevel()
    }

    /// Uncharges drained receive-buffer bytes.
    pub fn uncharge_recv_buf(&mut self, core: CoreId, bytes: u64) -> Option<PressureLevel> {
        self.sub_bytes(core, bytes, |c| &mut c.recv_buf_bytes);
        self.relevel()
    }

    /// Current global pressure level.
    pub fn level(&self) -> PressureLevel {
        self.level
    }

    /// Whether the TIME_WAIT bucket cap is exhausted (the next entry
    /// must be recycled instantly).
    pub fn tw_at_cap(&self) -> bool {
        self.time_wait + self.unit() > self.cfg.max_tw_buckets
    }

    /// Whether the orphan cap is exhausted (the next orphan must be
    /// reset instead of finishing a graceful close).
    pub fn orphans_at_cap(&self) -> bool {
        self.orphans + self.unit() > self.cfg.max_orphans
    }

    /// Total modeled bytes currently charged.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Live modeled sockets (established + states past it, excluding
    /// embryos and TIME_WAIT buckets).
    pub fn sockets(&self) -> u64 {
        self.sockets
    }

    /// Live modeled embryos.
    pub fn embryos(&self) -> u64 {
        self.embryos
    }

    /// Live modeled TIME_WAIT buckets.
    pub fn time_wait(&self) -> u64 {
        self.time_wait
    }

    /// Live modeled orphans.
    pub fn orphans(&self) -> u64 {
        self.orphans
    }

    /// One core's account (index wraps like the charge paths).
    pub fn core_account(&self, core: CoreId) -> CoreAccount {
        self.cores[(core.0 as usize) % self.cores.len()]
    }

    /// High-watermarks observed since construction, in modeled units:
    /// `(bytes, sockets, embryos, time_wait, orphans)`.
    pub fn peaks(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.peak_bytes,
            self.peak_sockets,
            self.peak_embryos,
            self.peak_time_wait,
            self.peak_orphans,
        )
    }

    /// Certifies the ledger drained to zero: every per-core account
    /// and every global bucket empty. Returns a human-readable
    /// imbalance description otherwise — the strict-mode invariant
    /// fails the run with it.
    pub fn balance(&self) -> Result<(), String> {
        if self.total_bytes == 0
            && self.sockets == 0
            && self.embryos == 0
            && self.time_wait == 0
            && self.orphans == 0
            && self.cores.iter().all(CoreAccount::is_zero)
        {
            return Ok(());
        }
        let leaky: Vec<String> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| {
                format!(
                    "core{i}: {}B tcb / {}B snd / {}B rcv / {} embryo / {} tw / {} orphan",
                    c.tcb_bytes,
                    c.send_buf_bytes,
                    c.recv_buf_bytes,
                    c.embryos,
                    c.time_wait,
                    c.orphans
                )
            })
            .collect();
        Err(format!(
            "memory accounts did not drain: {} bytes, {} sockets, {} embryos, {} tw, \
             {} orphans still charged [{}]",
            self.total_bytes,
            self.sockets,
            self.embryos,
            self.time_wait,
            self.orphans,
            leaky.join("; ")
        ))
    }
}

/// Pressure-reaction counters, kept by the TCP stack next to its other
/// statistics (merged across lanes like every other stats block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// SYNs dropped because the budget was at `high`.
    pub pressure_syn_drops: u64,
    /// Embryonic connections pruned from syn queues at `high`.
    pub embryos_pruned: u64,
    /// TIME_WAIT entries recycled instantly at the bucket cap.
    pub tw_forced_recycles: u64,
    /// Orphans reset instead of closing gracefully at the orphan cap.
    pub orphans_killed: u64,
    /// ACKs whose advertised window was clamped under pressure.
    pub window_clamps: u64,
    /// Receive-queue collapse passes under pressure.
    pub buffer_reclaims: u64,
    /// Modeled bytes returned by those reclaim passes.
    pub bytes_reclaimed: u64,
    /// Transitions into the `pressure` zone.
    pub enter_pressure: u64,
    /// Transitions into the `high` zone.
    pub enter_high: u64,
}

impl MemStats {
    /// Folds `other`'s counters into `self` (lane merge).
    pub fn merge(&mut self, other: &MemStats) {
        self.pressure_syn_drops += other.pressure_syn_drops;
        self.embryos_pruned += other.embryos_pruned;
        self.tw_forced_recycles += other.tw_forced_recycles;
        self.orphans_killed += other.orphans_killed;
        self.window_clamps += other.window_clamps;
        self.buffer_reclaims += other.buffer_reclaims;
        self.bytes_reclaimed += other.bytes_reclaimed;
        self.enter_pressure += other.enter_pressure;
        self.enter_high += other.enter_high;
    }

    /// Records a level transition.
    pub fn on_transition(&mut self, level: PressureLevel) {
        match level {
            PressureLevel::Low => {}
            PressureLevel::Pressure => self.enter_pressure += 1,
            PressureLevel::High => self.enter_high += 1,
        }
    }
}

/// The `mem` block of a run report: budget, watermarks, and reaction
/// totals, all in modeled units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemReport {
    /// Hard budget (`tcp_mem[2]`) in modeled bytes.
    pub budget_bytes: u64,
    /// Socket modeling scale in effect.
    pub scale: u32,
    /// Peak modeled bytes charged.
    pub peak_bytes: u64,
    /// Peak modeled concurrent sockets (established and later,
    /// excluding embryos / TIME_WAIT).
    pub peak_sockets: u64,
    /// Peak modeled embryonic connections.
    pub peak_embryos: u64,
    /// Peak modeled TIME_WAIT buckets.
    pub peak_time_wait: u64,
    /// Peak modeled orphans.
    pub peak_orphans: u64,
    /// Pressure-reaction counters for the run.
    pub stats: MemStats,
    /// Whether the ledger was conserved at the end of the run: every
    /// freed socket and drained buffer was uncharged, so the accounts
    /// match the surviving socket table exactly (and drain to zero
    /// once it empties). [`MemReport::from_accounts`] seeds this with
    /// the strict drained-to-zero check; the stack overrides it with
    /// its ledger-vs-socket-table audit, which also holds mid-flight.
    pub balanced: bool,
}

impl MemReport {
    /// Assembles the report block from a drained ledger and the
    /// stack's reaction counters.
    pub fn from_accounts(mem: &MemAccounts, stats: MemStats) -> MemReport {
        let (peak_bytes, peak_sockets, peak_embryos, peak_time_wait, peak_orphans) = mem.peaks();
        MemReport {
            budget_bytes: mem.config().high_bytes,
            scale: mem.config().scale,
            peak_bytes,
            peak_sockets,
            peak_embryos,
            peak_time_wait,
            peak_orphans,
            stats,
            balanced: mem.balance().is_ok(),
        }
    }

    /// Folds a lane's report into a machine-wide one: peaks add
    /// (lanes are disjoint machine partitions observed at the same
    /// barrier cadence), budgets add back to the pre-split total, and
    /// balance is conjunctive.
    pub fn merge(&mut self, other: &MemReport) {
        self.budget_bytes += other.budget_bytes;
        self.peak_bytes += other.peak_bytes;
        self.peak_sockets += other.peak_sockets;
        self.peak_embryos += other.peak_embryos;
        self.peak_time_wait += other.peak_time_wait;
        self.peak_orphans += other.peak_orphans;
        self.stats.merge(&other.stats);
        self.balanced &= other.balanced;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemConfig {
        MemConfig::ram_bytes(100_000).tw_buckets(3).orphans(2)
    }

    #[test]
    fn ram_budget_derivation() {
        let c = MemConfig::ram_mb(2);
        assert_eq!(c.high_bytes, 2 * 1024 * 1024);
        assert_eq!(c.low_bytes, 1024 * 1024);
        assert_eq!(c.pressure_bytes, 2 * 1024 * 1024 / 4 * 3);
        assert_eq!(c.max_tw_buckets, 2 * 1024 * 1024 / 4096);
        assert_eq!(c.max_orphans, 2 * 1024 * 1024 / 65_536);
        assert_eq!(c.scale, 1);
    }

    #[test]
    fn lifecycle_balances() {
        let mut m = MemAccounts::new(cfg(), 4);
        m.charge_embryo(CoreId(1));
        m.promote(CoreId(1));
        m.charge_recv_buf(CoreId(1), 512);
        m.charge_send_buf(CoreId(1), 256);
        assert_eq!(m.sockets(), 1);
        assert!(m.total_bytes() > TCB_BYTES);
        m.uncharge_recv_buf(CoreId(1), 512);
        m.uncharge_send_buf(CoreId(1), 256);
        m.enter_time_wait(CoreId(1));
        assert_eq!(m.time_wait(), 1);
        assert_eq!(m.sockets(), 0);
        m.leave_time_wait(CoreId(1));
        assert!(m.balance().is_ok());
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn imbalance_is_described() {
        let mut m = MemAccounts::new(cfg(), 2);
        m.charge_embryo(CoreId(0));
        let err = m.balance().unwrap_err();
        assert!(err.contains("1 embryos"), "{err}");
        assert!(err.contains("core0"), "{err}");
    }

    #[test]
    fn levels_follow_thresholds_with_hysteresis() {
        let c = MemConfig {
            low_bytes: 1_000,
            pressure_bytes: 2_000,
            high_bytes: 3_000,
            max_tw_buckets: 100,
            max_orphans: 100,
            scale: 1,
        };
        let mut m = MemAccounts::new(c, 1);
        assert_eq!(m.level(), PressureLevel::Low);
        let t = m.charge_recv_buf(CoreId(0), 2_500);
        assert_eq!(t, Some(PressureLevel::Pressure));
        let t = m.charge_recv_buf(CoreId(0), 600);
        assert_eq!(t, Some(PressureLevel::High));
        // Drop below pressure_bytes but above low: hysteresis holds.
        let t = m.uncharge_recv_buf(CoreId(0), 1_600);
        assert_eq!(t, Some(PressureLevel::Pressure));
        assert_eq!(m.level(), PressureLevel::Pressure);
        // Only draining below `low` clears the flag.
        let t = m.uncharge_recv_buf(CoreId(0), 1_000);
        assert_eq!(t, Some(PressureLevel::Low));
    }

    #[test]
    fn bucket_caps() {
        let mut m = MemAccounts::new(cfg(), 1);
        for _ in 0..3 {
            m.charge_embryo(CoreId(0));
            m.promote(CoreId(0));
            assert!(!m.tw_at_cap());
            m.enter_time_wait(CoreId(0));
        }
        assert!(m.tw_at_cap());
        m.leave_time_wait(CoreId(0));
        assert!(!m.tw_at_cap());

        assert!(!m.orphans_at_cap());
        m.charge_orphan(CoreId(0));
        m.charge_orphan(CoreId(0));
        assert!(m.orphans_at_cap());
        m.uncharge_orphan(CoreId(0));
        assert!(!m.orphans_at_cap());
    }

    #[test]
    fn scale_multiplies_everything() {
        let mut m = MemAccounts::new(cfg().scaled(16), 2);
        m.charge_embryo(CoreId(0));
        assert_eq!(m.embryos(), 16);
        assert_eq!(m.total_bytes(), 16 * EMBRYO_BYTES);
        m.promote(CoreId(0));
        assert_eq!(m.sockets(), 16);
        assert_eq!(m.total_bytes(), 16 * TCB_BYTES);
        m.enter_time_wait(CoreId(0));
        assert_eq!(m.time_wait(), 16);
        m.leave_time_wait(CoreId(0));
        assert!(m.balance().is_ok());
        let (pb, ps, pe, ptw, _) = m.peaks();
        assert_eq!(ps, 16);
        assert_eq!(pe, 16);
        assert_eq!(ptw, 16);
        assert!(pb >= 16 * TCB_BYTES);
    }

    #[test]
    fn split_divides_budget() {
        let c = MemConfig::ram_bytes(100_000).scaled(8).split(4);
        assert_eq!(c.high_bytes, 25_000);
        assert_eq!(c.low_bytes, 12_500);
        assert_eq!(c.scale, 8);
    }

    #[test]
    fn report_merge_adds_partitions() {
        let mut m1 = MemAccounts::new(cfg(), 1);
        m1.charge_embryo(CoreId(0));
        m1.promote(CoreId(0));
        m1.uncharge_tcb(CoreId(0));
        let mut m2 = MemAccounts::new(cfg(), 1);
        m2.charge_embryo(CoreId(0));
        m2.uncharge_embryo(CoreId(0));
        let mut s1 = MemStats::default();
        s1.window_clamps = 3;
        let mut s2 = MemStats::default();
        s2.window_clamps = 4;
        let mut r = MemReport::from_accounts(&m1, s1);
        r.merge(&MemReport::from_accounts(&m2, s2));
        assert_eq!(r.peak_sockets, 1);
        assert_eq!(r.peak_embryos, 2);
        assert_eq!(r.stats.window_clamps, 7);
        assert!(r.balanced);
        assert_eq!(r.budget_bytes, 200_000);
    }

    #[test]
    fn transitions_are_counted() {
        let mut s = MemStats::default();
        s.on_transition(PressureLevel::Pressure);
        s.on_transition(PressureLevel::High);
        s.on_transition(PressureLevel::Low);
        assert_eq!(s.enter_pressure, 1);
        assert_eq!(s.enter_high, 1);
    }
}
