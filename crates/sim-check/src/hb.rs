//! FastTrack-style vector-clock happens-before race detection.
//!
//! Each simulated core carries a vector clock; its own component is an
//! *epoch* advanced at every `op_begin` and `check_boundary`. Ordering
//! flows through **channels** — the synchronization edges the kernel
//! actually has:
//!
//! - [`Chan::Lock`]: release→acquire of a lock *class* (class level,
//!   matching the lockset detector's masks, so a lockset-clean
//!   discipline is always happens-before-clean too);
//! - [`Chan::Softirq`]: cross-core packet handoff — the steering core
//!   enqueues onto the target core's softirq backlog, the target joins
//!   when it dequeues (RFD steering and NIC re-steering both ride this
//!   edge);
//! - [`Chan::Epoll`]: ready-list post → `epoll_wait` on one instance
//!   (the wakeup edge of the accept/read path handover);
//! - [`Chan::Timer`]: timer arm → expiry on a per-core timer base.
//!
//! A channel **publish** is buffered and flushed when the publishing
//! op commits (or at a boundary): writes are stamped with the epoch
//! current at commit/boundary time, so publishing mid-op would claim
//! ordering for writes the op had not yet stamped. The deferral is
//! sound because the driver dispatches ops sequentially in host order —
//! a receiver's join always runs in a later dispatch than the sender's
//! commit.
//!
//! Per sim-mem object generation the detector keeps only the **last
//! write epoch** (the FastTrack compression): a write by core `c` races
//! the previous write `(w, k)` iff `c != w` and `clock_c[w] < k` — no
//! synchronization chain carried `w`'s write to `c`. Reads are not
//! tracked (the stack's lock-free lookups are RCU-idiomatic), so this
//! detector judges write-write ordering only. Unlike the lockset pass
//! it stays silent on ownership transfer: an accept-path handover or a
//! recycled slab slot whose handoff rides a channel is simply ordered.

use std::collections::HashMap;

use sim_mem::ObjKind;
use sim_sync::LockClass;

use crate::{CheckReport, Detector, Violation};

/// A synchronization channel: the carrier of a happens-before edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Chan {
    /// Release→acquire of a lock class (class level, like locksets).
    Lock(LockClass),
    /// Softirq backlog handoff onto the given target core.
    Softirq(u16),
    /// Epoll ready-list post→wait on the given instance.
    Epoll(u32),
    /// Timer arm→expiry on the given core's timer base.
    Timer(u16),
}

/// The epoch of one write: which core, at which own-clock value.
#[derive(Debug, Clone, Copy)]
struct Epoch {
    core: u16,
    clock: u64,
}

#[derive(Debug)]
struct LastWrite {
    gen: u64,
    epoch: Epoch,
    /// Site of the previous write — the other half of a race witness.
    site: String,
    reported: bool,
}

/// The vector-clock happens-before detector.
#[derive(Debug, Default)]
pub struct HappensBefore {
    /// `clocks[c]` is core `c`'s vector clock; `clocks[c][c]` its epoch.
    clocks: Vec<Vec<u64>>,
    /// Last published clock per channel (join of all publishers).
    channels: HashMap<Chan, Vec<u64>>,
    /// Channels the current op on each core will publish at flush time.
    pending: Vec<Vec<Chan>>,
    /// FastTrack-compressed last-write metadata per slab slot.
    last: HashMap<u32, LastWrite>,
}

impl HappensBefore {
    /// A detector for `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        HappensBefore {
            clocks: (0..cores).map(|_| vec![0; cores]).collect(),
            channels: HashMap::new(),
            pending: (0..cores).map(|_| Vec::new()).collect(),
            last: HashMap::new(),
        }
    }

    fn ensure(&mut self, core: u16) {
        let n = (core as usize) + 1;
        if n > self.clocks.len() {
            for clock in &mut self.clocks {
                clock.resize(n, 0);
            }
            self.clocks.resize_with(n, || vec![0; n]);
            self.pending.resize_with(n, Vec::new);
        }
    }

    /// Advances `core`'s own epoch (new op or new boundary segment).
    pub fn tick(&mut self, core: u16) {
        self.ensure(core);
        let c = core as usize;
        self.clocks[c][c] += 1;
    }

    /// Joins `chan`'s published clock into `core`'s clock.
    pub fn join(&mut self, core: u16, chan: Chan) {
        self.ensure(core);
        if let Some(ch) = self.channels.get(&chan) {
            let clock = &mut self.clocks[core as usize];
            if ch.len() > clock.len() {
                clock.resize(ch.len(), 0);
            }
            for (mine, theirs) in clock.iter_mut().zip(ch.iter()) {
                *mine = (*mine).max(*theirs);
            }
        }
    }

    /// Schedules a publish of `core`'s clock onto `chan`, performed at
    /// the next [`HappensBefore::flush`] so it carries the same epoch
    /// that stamps the op's writes.
    pub fn defer_publish(&mut self, core: u16, chan: Chan) {
        self.ensure(core);
        let pending = &mut self.pending[core as usize];
        if !pending.contains(&chan) {
            pending.push(chan);
        }
    }

    /// Publishes every deferred channel with `core`'s current clock.
    /// Called at op commit and at boundaries, after write evaluation.
    pub fn flush(&mut self, core: u16) {
        self.ensure(core);
        let chans = std::mem::take(&mut self.pending[core as usize]);
        let clock = &self.clocks[core as usize];
        for chan in chans {
            let ch = self
                .channels
                .entry(chan)
                .or_insert_with(|| vec![0; clock.len()]);
            if clock.len() > ch.len() {
                ch.resize(clock.len(), 0);
            }
            for (theirs, mine) in ch.iter_mut().zip(clock.iter()) {
                *theirs = (*theirs).max(*mine);
            }
        }
    }

    /// Feeds one committed write and returns whether it was *ordered*
    /// after the previous write (same core, fresh object, or a
    /// happens-before chain exists). An unordered pair is a race,
    /// reported once per object generation.
    #[allow(clippy::too_many_arguments)] // flat hot-path call, every field used
    pub fn write(
        &mut self,
        slot: u32,
        gen: u64,
        kind: ObjKind,
        core: u16,
        site: &str,
        report: &mut CheckReport,
    ) -> bool {
        self.ensure(core);
        let c = core as usize;
        let clock = self.clocks[c][c];
        let st = match self.last.entry(slot) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(LastWrite {
                    gen,
                    epoch: Epoch { core, clock },
                    site: site.to_string(),
                    reported: false,
                });
                return true;
            }
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
        };
        if st.gen != gen {
            // Slab slot recycled: a different object now lives here.
            *st = LastWrite {
                gen,
                epoch: Epoch { core, clock },
                site: site.to_string(),
                reported: false,
            };
            return true;
        }
        let prev = st.epoch;
        let ordered = prev.core == core
            || self.clocks[c]
                .get(prev.core as usize)
                .is_some_and(|&seen| seen >= prev.clock);
        if !ordered && !st.reported {
            st.reported = true;
            report.record(Violation {
                detector: Detector::Hb,
                subject: kind.name().to_string(),
                cores: vec![core, prev.core],
                site: site.to_string(),
                detail: format!(
                    "unsynchronized write to {} slot {slot} on core {core} at {site}: \
                     no happens-before edge from the previous write on core {} at {} \
                     (epoch {}, core {core} has seen only {})",
                    kind.name(),
                    prev.core,
                    st.site,
                    prev.clock,
                    self.clocks[c].get(prev.core as usize).copied().unwrap_or(0),
                ),
            });
        }
        st.epoch = Epoch { core, clock };
        st.site = site.to_string();
        ordered
    }

    /// Number of objects currently carrying last-write metadata.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.last.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb() -> (HappensBefore, CheckReport) {
        (HappensBefore::new(4), CheckReport::default())
    }

    /// One op: tick, optional joins, one write, publishes, flush.
    fn op_write(
        h: &mut HappensBefore,
        r: &mut CheckReport,
        core: u16,
        joins: &[Chan],
        slot: u32,
        pubs: &[Chan],
    ) -> bool {
        h.tick(core);
        for &c in joins {
            h.join(core, c);
        }
        for &c in pubs {
            h.defer_publish(core, c);
        }
        let ordered = h.write(slot, 1, ObjKind::Tcb, core, "op", r);
        h.flush(core);
        ordered
    }

    #[test]
    fn same_core_writes_are_always_ordered() {
        let (mut h, mut r) = hb();
        for _ in 0..10 {
            assert!(op_write(&mut h, &mut r, 1, &[], 7, &[]));
        }
        assert_eq!(r.hb, 0);
    }

    #[test]
    fn lock_channel_orders_cross_core_writes() {
        let (mut h, mut r) = hb();
        let l = Chan::Lock(LockClass::Slock);
        assert!(op_write(&mut h, &mut r, 0, &[l], 3, &[l]));
        assert!(op_write(&mut h, &mut r, 2, &[l], 3, &[l]));
        assert!(op_write(&mut h, &mut r, 0, &[l], 3, &[l]));
        assert_eq!(r.hb, 0);
    }

    #[test]
    fn unsynchronized_cross_core_write_races_once() {
        let (mut h, mut r) = hb();
        // Core 0 writes without publishing anything; core 1 writes the
        // same object having joined nothing that saw core 0's epoch.
        assert!(op_write(&mut h, &mut r, 0, &[], 5, &[]));
        assert!(!op_write(&mut h, &mut r, 1, &[], 5, &[]));
        // Reported once per object.
        op_write(&mut h, &mut r, 0, &[], 5, &[]);
        assert_eq!(r.hb, 1, "{r:#?}");
        let d = &r.diagnostics[0];
        assert_eq!(d.detector, Detector::Hb);
        assert_eq!(d.subject, "tcb");
        assert_eq!(d.cores, vec![1, 0], "racing core first, then previous");
    }

    #[test]
    fn publish_without_matching_join_does_not_order() {
        let (mut h, mut r) = hb();
        let slock = Chan::Lock(LockClass::Slock);
        let base = Chan::Lock(LockClass::BaseLock);
        assert!(op_write(&mut h, &mut r, 0, &[slock], 9, &[slock]));
        // Core 3 joins a *different* channel: no edge.
        assert!(!op_write(&mut h, &mut r, 3, &[base], 9, &[base]));
        assert_eq!(r.hb, 1);
    }

    #[test]
    fn softirq_handoff_orders_steered_packet_processing() {
        let (mut h, mut r) = hb();
        // Core 0 processes a packet, writes the TCB, and steers the
        // packet to core 2 (publish onto core 2's softirq channel).
        assert!(op_write(&mut h, &mut r, 0, &[], 11, &[Chan::Softirq(2)]));
        // Core 2 dequeues: joins its own softirq channel, then writes.
        assert!(op_write(&mut h, &mut r, 2, &[Chan::Softirq(2)], 11, &[]));
        assert_eq!(r.hb, 0);
    }

    #[test]
    fn epoll_post_wait_orders_the_wakeup_path() {
        let (mut h, mut r) = hb();
        let ep = Chan::Epoll(4);
        assert!(op_write(&mut h, &mut r, 1, &[], 13, &[ep]));
        assert!(op_write(&mut h, &mut r, 3, &[ep], 13, &[]));
        assert_eq!(r.hb, 0);
    }

    #[test]
    fn transitive_chains_order_through_a_middleman() {
        let (mut h, mut r) = hb();
        let a = Chan::Lock(LockClass::Slock);
        let b = Chan::Lock(LockClass::EhashLock);
        assert!(op_write(&mut h, &mut r, 0, &[], 17, &[a]));
        // Core 1 joins a and republishes on b without touching the obj.
        h.tick(1);
        h.join(1, a);
        h.defer_publish(1, b);
        h.flush(1);
        // Core 2 joins b: transitively ordered after core 0's write.
        assert!(op_write(&mut h, &mut r, 2, &[b], 17, &[]));
        assert_eq!(r.hb, 0);
    }

    #[test]
    fn publish_is_deferred_to_flush() {
        let (mut h, mut r) = hb();
        let l = Chan::Lock(LockClass::Slock);
        // Core 0 defers a publish but has not flushed yet; core 1's
        // join sees nothing.
        h.tick(0);
        h.defer_publish(0, l);
        h.write(21, 1, ObjKind::Tcb, 0, "op", &mut r);
        h.tick(1);
        h.join(1, l);
        assert!(!h.write(21, 1, ObjKind::Tcb, 1, "op", &mut r));
        assert_eq!(r.hb, 1, "join before flush must not order");
    }

    #[test]
    fn generation_change_resets_state() {
        let (mut h, mut r) = hb();
        assert!(op_write(&mut h, &mut r, 0, &[], 23, &[]));
        // Recycled slot: the new object's first write is fresh even
        // with no synchronization back to the old owner.
        h.tick(2);
        assert!(h.write(23, 2, ObjKind::Epoll, 2, "op", &mut r));
        assert_eq!(r.hb, 0);
        assert_eq!(h.tracked(), 1);
    }
}
