//! Shard-safety certification: who owns which kernel object, and does
//! the ownership ever cross cores?
//!
//! The paper's scalability argument is a partition proof — per-core
//! listen/established tables, per-core timer bases and RFD delivery
//! keep connection state core-local. This module turns that claim into
//! a certified inventory: every sim-mem object's **writer core** is
//! tracked over its lifetime, every cross-core transfer is recorded as
//! an edge with dual witness sites, and each object *kind* is
//! classified into the strongest statement that held for every object
//! of the kind:
//!
//! - [`ShardClass::CoreLocal`] — never written by a second core;
//! - [`ShardClass::Migrated`] — ownership moved, but never returned to
//!   a core that already owned it (a bounded handover, e.g. the
//!   accept-path handoff);
//! - [`ShardClass::Shared`] — some core re-acquired ownership it had
//!   before (ping-pong): the object is genuinely shared state.
//!
//! A [`ShardPolicy`] states, per kind, the weakest class the kernel
//! variant under test is allowed to exhibit; an object exceeding its
//! kind's bound is a [`Detector::Shard`] violation. The aggregate
//! [`ShardReport`] — deterministic, `BTreeMap`-ordered, digestable —
//! is the certified input contract for sharding the simulator itself
//! (ROADMAP item 1): anything `CoreLocal` may live in a per-lane event
//! loop without synchronization, `Migrated` needs a handoff protocol,
//! `Shared` needs a real lock or a redesign.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};
use sim_mem::ObjKind;

use crate::{CheckReport, Detector, Violation};

/// How far an object (or kind) strays from core-locality. Ordered:
/// `CoreLocal < Migrated < Shared`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ShardClass {
    /// Only ever written by one core.
    CoreLocal,
    /// Ownership transferred, never back to a previous owner.
    Migrated,
    /// Ownership revisited a previous owner: truly shared.
    Shared,
}

impl ShardClass {
    /// Stable short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShardClass::CoreLocal => "core_local",
            ShardClass::Migrated => "migrated",
            ShardClass::Shared => "shared",
        }
    }
}

/// Per-kind upper bounds on the shard class a kernel variant may
/// exhibit. Derived from the stack configuration by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// The weakest class each [`ObjKind`] may reach (indexed by kind).
    pub max: [ShardClass; ObjKind::COUNT],
}

impl ShardPolicy {
    /// Allows everything (the default): the certifier only inventories.
    #[must_use]
    pub fn permissive() -> Self {
        ShardPolicy {
            max: [ShardClass::Shared; ObjKind::COUNT],
        }
    }

    /// Returns the bound for one kind.
    #[must_use]
    pub fn bound(&self, kind: ObjKind) -> ShardClass {
        self.max[kind as usize]
    }

    /// Sets the bound for one kind (builder style).
    #[must_use]
    pub fn with(mut self, kind: ObjKind, max: ShardClass) -> Self {
        self.max[kind as usize] = max;
        self
    }
}

impl Default for ShardPolicy {
    fn default() -> Self {
        Self::permissive()
    }
}

/// One cross-core ownership edge of a kind, with dual witness sites.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardEdge {
    /// The core that owned the object before the transfer.
    pub from_core: u16,
    /// The core that took ownership.
    pub to_core: u16,
    /// Transfers along this edge.
    pub count: u64,
    /// Transfers that rode a happens-before channel (synchronized).
    pub synced: u64,
    /// Site of the previous owner's last write (first witness).
    pub from_site: String,
    /// Site of the transferring write (second witness).
    pub to_site: String,
}

/// Aggregate classification of one object kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardKindReport {
    /// Kind name (`ObjKind::name`).
    pub kind: String,
    /// Objects of this kind observed (distinct slot generations).
    pub objects: u64,
    /// Total cross-core ownership transfers.
    pub transfers: u64,
    /// Transfers with no happens-before edge from the previous owner.
    pub unsynced: u64,
    /// The strongest class reached by any object of the kind.
    pub class: String,
    /// The policy bound the kind was certified against.
    pub allowed: String,
    /// Every distinct cross-core edge, ordered by (from, to).
    pub edges: Vec<ShardEdge>,
}

/// The certified shard inventory, embedded in `CheckReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardReport {
    /// One entry per object kind that was observed, in kind order.
    pub kinds: Vec<ShardKindReport>,
}

impl ShardReport {
    /// FNV-1a digest over the canonical JSON encoding: deterministic
    /// runs must produce bit-identical reports.
    #[must_use]
    pub fn digest(&self) -> String {
        let json = serde_json::to_string(self).unwrap_or_default();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Total cross-core transfers across every kind.
    #[must_use]
    pub fn total_transfers(&self) -> u64 {
        self.kinds.iter().map(|k| k.transfers).sum()
    }

    /// Number of distinct cross-core edges across every kind.
    #[must_use]
    pub fn total_edges(&self) -> usize {
        self.kinds.iter().map(|k| k.edges.len()).sum()
    }

    /// The entry for one kind, if it was observed.
    #[must_use]
    pub fn kind(&self, kind: ObjKind) -> Option<&ShardKindReport> {
        self.kinds.iter().find(|k| k.kind == kind.name())
    }

    /// Folds another lane's inventory into this one. Kinds merge by
    /// name (objects/transfers/unsynced sum, the strongest class
    /// wins); edges merge by remapped `(from, to)` pair with counts
    /// summed, `core_offset` translating lane-local core ids into the
    /// merged machine's numbering. Output ordering is canonical (kinds
    /// by name, edges by pair), so lane-order merging is deterministic.
    pub fn merge(&mut self, other: &ShardReport, core_offset: u16) {
        for theirs in &other.kinds {
            if let Some(mine) = self.kinds.iter_mut().find(|k| k.kind == theirs.kind) {
                mine.objects += theirs.objects;
                mine.transfers += theirs.transfers;
                mine.unsynced += theirs.unsynced;
                if class_rank(&theirs.class) > class_rank(&mine.class) {
                    mine.class.clone_from(&theirs.class);
                }
                for e in &theirs.edges {
                    let (from, to) = (e.from_core + core_offset, e.to_core + core_offset);
                    if let Some(existing) = mine
                        .edges
                        .iter_mut()
                        .find(|m| m.from_core == from && m.to_core == to)
                    {
                        existing.count += e.count;
                        existing.synced += e.synced;
                    } else {
                        let mut e = e.clone();
                        e.from_core = from;
                        e.to_core = to;
                        mine.edges.push(e);
                    }
                }
                mine.edges.sort_by_key(|e| (e.from_core, e.to_core));
            } else {
                let mut k = theirs.clone();
                for e in &mut k.edges {
                    e.from_core += core_offset;
                    e.to_core += core_offset;
                }
                self.kinds.push(k);
            }
        }
        self.kinds.sort_by(|a, b| a.kind.cmp(&b.kind));
    }
}

/// Severity order of shard-class names for merged reports; unknown
/// names rank above everything so they are never silently downgraded.
fn class_rank(name: &str) -> u8 {
    match name {
        "core_local" => 0,
        "migrated" => 1,
        "shared" => 2,
        _ => 3,
    }
}

#[derive(Debug)]
struct ObjHist {
    gen: u64,
    owner: u16,
    /// Bitmask of cores that have owned this object (cores ≥ 127 fold
    /// onto the top bit — a safe over-approximation toward `Shared`).
    visited: u128,
    class: ShardClass,
    last_site: String,
    reported: bool,
}

#[derive(Debug, Default)]
struct KindAgg {
    objects: u64,
    transfers: u64,
    unsynced: u64,
    class: Option<ShardClass>,
    edges: BTreeMap<(u16, u16), EdgeAgg>,
}

#[derive(Debug)]
struct EdgeAgg {
    count: u64,
    synced: u64,
    from_site: String,
    to_site: String,
}

fn core_bit(core: u16) -> u128 {
    1u128 << u32::from(core).min(127)
}

/// The per-object ownership tracker and per-kind aggregator.
#[derive(Debug)]
pub struct ShardCert {
    policy: ShardPolicy,
    objs: HashMap<u32, ObjHist>,
    kinds: Vec<KindAgg>,
}

impl Default for ShardCert {
    fn default() -> Self {
        Self::new(ShardPolicy::permissive())
    }
}

impl ShardCert {
    /// A certifier enforcing `policy`.
    #[must_use]
    pub fn new(policy: ShardPolicy) -> Self {
        ShardCert {
            policy,
            objs: HashMap::new(),
            kinds: (0..ObjKind::COUNT).map(|_| KindAgg::default()).collect(),
        }
    }

    /// Replaces the enforced policy (before any writes are observed).
    pub fn set_policy(&mut self, policy: ShardPolicy) {
        self.policy = policy;
    }

    /// Feeds one committed write: object `slot` (generation `gen`) was
    /// written on `core`; `synced` says whether the happens-before
    /// detector found the write ordered after the previous one.
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        &mut self,
        slot: u32,
        gen: u64,
        kind: ObjKind,
        core: u16,
        site: &str,
        synced: bool,
        report: &mut CheckReport,
    ) {
        let agg = &mut self.kinds[kind as usize];
        let st = match self.objs.entry(slot) {
            std::collections::hash_map::Entry::Vacant(v) => {
                agg.objects += 1;
                agg.class = Some(
                    agg.class
                        .map_or(ShardClass::CoreLocal, |c| c.max(ShardClass::CoreLocal)),
                );
                v.insert(ObjHist {
                    gen,
                    owner: core,
                    visited: core_bit(core),
                    class: ShardClass::CoreLocal,
                    last_site: site.to_string(),
                    reported: false,
                });
                return;
            }
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
        };
        if st.gen != gen {
            // Slab slot recycled: a fresh object, a fresh history.
            agg.objects += 1;
            agg.class = Some(
                agg.class
                    .map_or(ShardClass::CoreLocal, |c| c.max(ShardClass::CoreLocal)),
            );
            *st = ObjHist {
                gen,
                owner: core,
                visited: core_bit(core),
                class: ShardClass::CoreLocal,
                last_site: site.to_string(),
                reported: false,
            };
            return;
        }
        if st.owner == core {
            st.last_site = site.to_string();
            return;
        }
        // Ownership transfer.
        let from = st.owner;
        agg.transfers += 1;
        agg.unsynced += u64::from(!synced);
        let edge = agg.edges.entry((from, core)).or_insert_with(|| EdgeAgg {
            count: 0,
            synced: 0,
            from_site: st.last_site.clone(),
            to_site: site.to_string(),
        });
        edge.count += 1;
        edge.synced += u64::from(synced);
        let revisit = st.visited & core_bit(core) != 0;
        let class = if revisit {
            ShardClass::Shared
        } else {
            ShardClass::Migrated
        };
        st.visited |= core_bit(core);
        st.owner = core;
        st.class = st.class.max(class);
        st.last_site = site.to_string();
        agg.class = Some(agg.class.map_or(st.class, |c| c.max(st.class)));
        let bound = self.policy.bound(kind);
        if st.class > bound && !st.reported {
            st.reported = true;
            report.record(Violation {
                detector: Detector::Shard,
                subject: kind.name().to_string(),
                cores: vec![core, from],
                site: site.to_string(),
                detail: format!(
                    "{} slot {slot} became {} (policy allows {}): core {core} took \
                     ownership at {site} from core {from} (previous write at {}), \
                     transfer was {}",
                    kind.name(),
                    st.class.name(),
                    bound.name(),
                    edge.from_site,
                    if synced {
                        "synchronized"
                    } else {
                        "UNSYNCHRONIZED"
                    },
                ),
            });
        }
    }

    /// The aggregate inventory, ordered by kind declaration order.
    /// Every kind gets a row — a kind with zero objects was never
    /// written during the run (read-only or not exercised) and is
    /// vacuously `core_local`.
    #[must_use]
    pub fn report(&self) -> ShardReport {
        let mut kinds = Vec::new();
        for k in ObjKind::ALL {
            let agg = &self.kinds[k as usize];
            let class = agg.class.unwrap_or(ShardClass::CoreLocal);
            kinds.push(ShardKindReport {
                kind: k.name().to_string(),
                objects: agg.objects,
                transfers: agg.transfers,
                unsynced: agg.unsynced,
                class: class.name().to_string(),
                allowed: self.policy.bound(k).name().to_string(),
                edges: agg
                    .edges
                    .iter()
                    .map(|(&(from, to), e)| ShardEdge {
                        from_core: from,
                        to_core: to,
                        count: e.count,
                        synced: e.synced,
                        from_site: e.from_site.clone(),
                        to_site: e.to_site.clone(),
                    })
                    .collect(),
            });
        }
        ShardReport { kinds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cert(policy: ShardPolicy) -> (ShardCert, CheckReport) {
        (ShardCert::new(policy), CheckReport::default())
    }

    #[test]
    fn single_core_objects_stay_core_local() {
        let (mut c, mut r) =
            cert(ShardPolicy::permissive().with(ObjKind::Tcb, ShardClass::CoreLocal));
        for _ in 0..5 {
            c.write(1, 1, ObjKind::Tcb, 2, "app", true, &mut r);
        }
        assert!(r.is_clean());
        let rep = c.report();
        let k = rep.kind(ObjKind::Tcb).unwrap();
        assert_eq!(k.class, "core_local");
        assert_eq!(k.transfers, 0);
        assert!(k.edges.is_empty());
    }

    #[test]
    fn one_way_handover_is_migrated() {
        let (mut c, mut r) =
            cert(ShardPolicy::permissive().with(ObjKind::Tcb, ShardClass::Migrated));
        c.write(4, 1, ObjKind::Tcb, 0, "softirq", true, &mut r);
        c.write(4, 1, ObjKind::Tcb, 3, "accept", true, &mut r);
        c.write(4, 1, ObjKind::Tcb, 3, "recv", true, &mut r);
        assert!(r.is_clean(), "{r:#?}");
        let rep = c.report();
        let k = rep.kind(ObjKind::Tcb).unwrap();
        assert_eq!(k.class, "migrated");
        assert_eq!(k.transfers, 1);
        assert_eq!(k.edges.len(), 1);
        assert_eq!(k.edges[0].from_core, 0);
        assert_eq!(k.edges[0].to_core, 3);
        assert_eq!(k.edges[0].from_site, "softirq");
        assert_eq!(k.edges[0].to_site, "accept");
    }

    #[test]
    fn ping_pong_is_shared_and_violates_a_tighter_policy() {
        let (mut c, mut r) =
            cert(ShardPolicy::permissive().with(ObjKind::SockBuf, ShardClass::CoreLocal));
        c.write(7, 1, ObjKind::SockBuf, 1, "app", true, &mut r);
        c.write(7, 1, ObjKind::SockBuf, 2, "softirq", true, &mut r);
        assert_eq!(r.shard, 1, "already Migrated > CoreLocal");
        c.write(7, 1, ObjKind::SockBuf, 1, "app", true, &mut r);
        // Reported once per object, class upgraded to shared.
        assert_eq!(r.shard, 1);
        assert_eq!(c.report().kind(ObjKind::SockBuf).unwrap().class, "shared");
        let d = &r.diagnostics[0];
        assert_eq!(d.detector, Detector::Shard);
        assert_eq!(d.cores, vec![2, 1]);
        assert!(d.detail.contains("sock_buf"), "{}", d.detail);
    }

    #[test]
    fn unsynced_transfers_are_counted() {
        let (mut c, mut r) = cert(ShardPolicy::permissive());
        c.write(9, 1, ObjKind::Epoll, 0, "a", true, &mut r);
        c.write(9, 1, ObjKind::Epoll, 1, "b", false, &mut r);
        c.write(9, 1, ObjKind::Epoll, 2, "c", true, &mut r);
        assert!(r.is_clean(), "permissive policy never violates");
        let rep = c.report();
        let k = rep.kind(ObjKind::Epoll).unwrap();
        assert_eq!(k.transfers, 2);
        assert_eq!(k.unsynced, 1);
    }

    #[test]
    fn generation_change_starts_a_fresh_history() {
        let (mut c, mut r) =
            cert(ShardPolicy::permissive().with(ObjKind::Tcb, ShardClass::CoreLocal));
        c.write(5, 1, ObjKind::Tcb, 0, "a", true, &mut r);
        // Recycled on another core: not a transfer.
        c.write(5, 2, ObjKind::Tcb, 3, "b", true, &mut r);
        assert!(r.is_clean());
        let rep = c.report();
        assert_eq!(rep.kind(ObjKind::Tcb).unwrap().objects, 2);
        assert_eq!(rep.kind(ObjKind::Tcb).unwrap().transfers, 0);
    }

    #[test]
    fn report_digest_is_deterministic_and_content_sensitive() {
        let (mut a, mut r1) = cert(ShardPolicy::permissive());
        let (mut b, mut r2) = cert(ShardPolicy::permissive());
        for c in [&mut a, &mut b] {
            c.write(
                1,
                1,
                ObjKind::Tcb,
                0,
                "x",
                true,
                &mut CheckReport::default(),
            );
            c.write(
                1,
                1,
                ObjKind::Tcb,
                1,
                "y",
                true,
                &mut CheckReport::default(),
            );
        }
        let _ = (&mut r1, &mut r2);
        assert_eq!(a.report().digest(), b.report().digest());
        b.write(
            1,
            1,
            ObjKind::Tcb,
            2,
            "z",
            true,
            &mut CheckReport::default(),
        );
        assert_ne!(a.report().digest(), b.report().digest());
    }
}
