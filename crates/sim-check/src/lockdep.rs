//! Lock acquisition-order tracking with online cycle detection.
//!
//! Modeled on the kernel's lockdep: ordering is tracked per *lock
//! class* (plus a nesting subclass, the `SINGLE_DEPTH_NESTING` analog
//! used when a listen socket's `slock` is taken around a child's), not
//! per instance — one observed `A -> B` ordering validates every pair
//! of instances. Each core keeps a stack of *scoped* holds; every
//! acquisition adds `held -> acquired` edges to a global digraph, and a
//! new edge that closes a cycle is a potential deadlock, reported with
//! the witness site of both directions.

use std::collections::HashMap;

use sim_sync::LockClass;

use crate::{CheckReport, Detector, Violation};

/// Nesting levels per class (0 = normal, 1 = nested/listen).
pub const MAX_SUBCLASS: u8 = 2;

const NODES: usize = LockClass::COUNT * MAX_SUBCLASS as usize;

/// Graph node for a `(class, subclass)` pair.
#[must_use]
pub fn node(class: LockClass, subclass: u8) -> u8 {
    debug_assert!(subclass < MAX_SUBCLASS, "subclass {subclass} out of range");
    (class as u8) * MAX_SUBCLASS + subclass
}

/// Human-readable node name, e.g. `slock` or `slock#1`.
#[must_use]
pub fn node_name(n: u8) -> String {
    let class = LockClass::ALL[usize::from(n) / MAX_SUBCLASS as usize];
    let sub = n % MAX_SUBCLASS;
    if sub == 0 {
        class.name().to_string()
    } else {
        format!("{}#{sub}", class.name())
    }
}

/// Where an ordering edge was first observed.
#[derive(Debug, Clone)]
struct Witness {
    core: u16,
    site: String,
}

/// The acquisition-order graph plus per-core held stacks.
#[derive(Debug)]
pub struct Lockdep {
    /// Per-core stacks of scoped-hold nodes.
    held: Vec<Vec<u8>>,
    /// Adjacency: `edges[a]` lists nodes acquired while `a` was held.
    edges: Vec<Vec<u8>>,
    /// First witness per directed edge.
    witness: HashMap<(u8, u8), Witness>,
    /// Class pairs already reported (unordered, to collapse mirrors).
    reported: Vec<(u8, u8)>,
    /// Nodes already reported for recursive (AA) acquisition.
    aa_reported: [bool; NODES],
}

impl Lockdep {
    /// A graph sized for `cores` cores (grows on demand).
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Self {
            held: vec![Vec::new(); cores],
            edges: vec![Vec::new(); NODES],
            witness: HashMap::new(),
            reported: Vec::new(),
            aa_reported: [false; NODES],
        }
    }

    fn stack(&mut self, core: u16) -> &mut Vec<u8> {
        let idx = usize::from(core);
        if idx >= self.held.len() {
            self.held.resize_with(idx + 1, Vec::new);
        }
        &mut self.held[idx]
    }

    /// Records an acquisition of `(class, subclass)` on `core` at
    /// `site`, adding ordering edges from every currently-held node and
    /// reporting any cycle the new edges would close. Scoped
    /// acquisitions are pushed onto the held stack.
    pub fn acquire(
        &mut self,
        core: u16,
        class: LockClass,
        subclass: u8,
        scoped: bool,
        site: &str,
        report: &mut CheckReport,
    ) {
        let n = node(class, subclass);
        let mut held = std::mem::take(self.stack(core));
        for &h in &held {
            self.add_edge(h, n, core, site, report);
        }
        if scoped {
            held.push(n);
        }
        *self.stack(core) = held;
    }

    fn add_edge(&mut self, from: u8, to: u8, core: u16, site: &str, report: &mut CheckReport) {
        if from == to {
            if !self.aa_reported[usize::from(from)] {
                self.aa_reported[usize::from(from)] = true;
                report.record(Violation {
                    detector: Detector::Lockdep,
                    subject: format!("{0} -> {0}", node_name(from)),
                    cores: vec![core],
                    site: site.to_string(),
                    detail: format!(
                        "recursive acquisition of {} while already held (AA deadlock); \
                         use a nesting subclass if the order is intentional",
                        node_name(from)
                    ),
                });
            }
            return;
        }
        if self.edges[usize::from(from)].contains(&to) {
            return;
        }
        // New ordering edge `from -> to`: if `to` already reaches
        // `from`, the combined graph has a cycle — some other path
        // ordered these nodes the other way round.
        if let Some(path) = self.path(to, from) {
            let pair = (from.min(to), from.max(to));
            if !self.reported.contains(&pair) {
                self.reported.push(pair);
                let first = self
                    .witness
                    .get(&(path[0], path[1]))
                    .cloned()
                    .unwrap_or_else(|| Witness {
                        core,
                        site: "?".to_string(),
                    });
                let chain: Vec<String> = path.iter().map(|&p| node_name(p)).collect();
                report.record(Violation {
                    detector: Detector::Lockdep,
                    subject: format!("{} -> {}", node_name(from), node_name(to)),
                    cores: vec![core, first.core],
                    site: site.to_string(),
                    detail: format!(
                        "acquiring {} while holding {} at {} inverts the existing order \
                         {} established at {} (core {})",
                        node_name(to),
                        node_name(from),
                        site,
                        chain.join(" -> "),
                        first.site,
                        first.core,
                    ),
                });
            }
        }
        self.edges[usize::from(from)].push(to);
        self.witness.entry((from, to)).or_insert_with(|| Witness {
            core,
            site: site.to_string(),
        });
    }

    /// BFS path from `from` to `to` over existing edges, inclusive of
    /// both endpoints.
    fn path(&self, from: u8, to: u8) -> Option<Vec<u8>> {
        let mut parent: [Option<u8>; NODES] = [None; NODES];
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = [false; NODES];
        seen[usize::from(from)] = true;
        while let Some(n) = queue.pop_front() {
            if n == to {
                let mut path = vec![to];
                let mut cur = to;
                while let Some(p) = parent[usize::from(cur)] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &next in &self.edges[usize::from(n)] {
                if !seen[usize::from(next)] {
                    seen[usize::from(next)] = true;
                    parent[usize::from(next)] = Some(n);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Bitmask of lock classes currently scope-held on `core`.
    #[must_use]
    pub fn held_mask(&self, core: u16) -> u16 {
        self.held.get(usize::from(core)).map_or(0, |stack| {
            stack.iter().fold(0, |m, &n| {
                m | crate::class_bit(LockClass::ALL[usize::from(n) / MAX_SUBCLASS as usize])
            })
        })
    }

    /// Releases the innermost scoped hold of `(class, subclass)`.
    pub fn release(&mut self, core: u16, class: LockClass, subclass: u8) {
        let n = node(class, subclass);
        let stack = self.stack(core);
        if let Some(pos) = stack.iter().rposition(|&h| h == n) {
            stack.remove(pos);
        }
    }

    /// Clears `core`'s held stack at op commit, returning any nodes
    /// that were still held (leaked scopes).
    pub fn clear_core(&mut self, core: u16) -> Vec<u8> {
        std::mem::take(self.stack(core))
    }

    /// Whether the acquisition-order graph is acyclic.
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm over the small fixed node set.
        let mut indegree = [0usize; NODES];
        for from in 0..NODES {
            for &to in &self.edges[from] {
                indegree[usize::from(to)] += 1;
            }
        }
        let mut queue: Vec<u8> = (0..NODES as u8)
            .filter(|&n| indegree[usize::from(n)] == 0)
            .collect();
        let mut visited = 0;
        while let Some(n) = queue.pop() {
            visited += 1;
            for &to in &self.edges[usize::from(n)] {
                indegree[usize::from(to)] -= 1;
                if indegree[usize::from(to)] == 0 {
                    queue.push(to);
                }
            }
        }
        visited == NODES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_names_encode_subclass() {
        assert_eq!(node_name(node(LockClass::Slock, 0)), "slock");
        assert_eq!(node_name(node(LockClass::Slock, 1)), "slock#1");
    }

    #[test]
    fn consistent_order_keeps_graph_acyclic() {
        let mut ld = Lockdep::new(2);
        let mut r = CheckReport::default();
        for _ in 0..8 {
            ld.acquire(0, LockClass::Slock, 0, true, "a", &mut r);
            ld.acquire(0, LockClass::EhashLock, 0, false, "a", &mut r);
            ld.acquire(0, LockClass::BaseLock, 0, false, "a", &mut r);
            ld.release(0, LockClass::Slock, 0);
            assert!(ld.clear_core(0).is_empty());
        }
        assert!(r.is_clean());
        assert!(ld.is_acyclic());
    }

    #[test]
    fn three_step_cycle_detected() {
        let mut ld = Lockdep::new(1);
        let mut r = CheckReport::default();
        // A -> B, B -> C, then C -> A closes a 3-cycle.
        ld.acquire(0, LockClass::DcacheLock, 0, true, "s1", &mut r);
        ld.acquire(0, LockClass::InodeLock, 0, false, "s1", &mut r);
        ld.release(0, LockClass::DcacheLock, 0);
        ld.acquire(0, LockClass::InodeLock, 0, true, "s2", &mut r);
        ld.acquire(0, LockClass::PortAlloc, 0, false, "s2", &mut r);
        ld.release(0, LockClass::InodeLock, 0);
        assert!(r.is_clean());
        ld.acquire(0, LockClass::PortAlloc, 0, true, "s3", &mut r);
        ld.acquire(0, LockClass::DcacheLock, 0, false, "s3", &mut r);
        ld.release(0, LockClass::PortAlloc, 0);
        assert_eq!(r.lockdep, 1);
        assert!(!ld.is_acyclic());
        let d = &r.diagnostics[0];
        assert!(d.detail.contains("s3") && d.detail.contains("s1"), "{d:?}");
    }

    #[test]
    fn release_pops_innermost_matching_hold() {
        let mut ld = Lockdep::new(1);
        let mut r = CheckReport::default();
        ld.acquire(0, LockClass::Slock, 1, true, "outer", &mut r);
        ld.acquire(0, LockClass::Slock, 0, true, "inner", &mut r);
        ld.release(0, LockClass::Slock, 0);
        ld.release(0, LockClass::Slock, 1);
        assert!(ld.clear_core(0).is_empty());
        assert!(r.is_clean());
    }
}
