//! Dynamic sanitizers for the simulated kernel.
//!
//! Five detectors run over the event stream of a simulation, in the
//! same zero-cost-when-disabled style as `sim-trace`:
//!
//! - **lockdep** ([`lockdep::Lockdep`]): per-core held-lock stacks and
//!   an acquisition-order graph over `(LockClass, subclass)` pairs with
//!   online cycle detection. Any two code paths that order the same two
//!   lock classes differently are a potential deadlock, reported with
//!   the witness sites of both orderings.
//! - **lockset** ([`lockset::Lockset`]): Eraser-style candidate-lockset
//!   race detection over `sim-mem` object writes. Each shared object
//!   keeps the intersection of the lock classes held by every op that
//!   wrote it from a second core onward; an empty intersection means no
//!   common lock protects the object.
//! - **happens-before** ([`hb::HappensBefore`]): FastTrack-style
//!   vector-clock race detection. Per-core epochs advance at `op_begin`
//!   and boundaries; ordering flows through lock-class, softirq-handoff,
//!   epoll-wakeup, and timer channels. Catches ordering races locksets
//!   cannot see, and stays silent on the ownership transfers (accept
//!   handover, slab recycling) where locksets over-report.
//! - **shard certifier** ([`shard::ShardCert`]): tracks every object's
//!   owning core over its lifetime and classifies each [`ObjKind`] as
//!   core-local / migrated / shared, against a per-kind
//!   [`shard::ShardPolicy`] bound. The aggregate [`shard::ShardReport`]
//!   names every cross-core ownership edge with dual witness sites.
//! - **partition lints** ([`partition::PartitionLint`]): Fastsocket
//!   invariants — local listen/established table entries, RFD-steered
//!   packets, and per-core timer bases must only be touched by their
//!   owning core. Lints arm themselves from a [`PartitionPolicy`]
//!   derived from the kernel variant under test.
//!
//! The [`Checker`] handle is cloned into every `Op`; when constructed
//! with [`Checker::disabled`] every hook is a branch on a `None` and
//! the simulation behaves (and costs) exactly as without the crate.
//!
//! Simulation timing is *never* affected by the checker: detectors only
//! observe acquisitions, writes, and deliveries that the stack already
//! performs. Violations accumulate into a [`CheckReport`] surfaced via
//! `RunReport::checks`.

pub mod hb;
pub mod lockdep;
pub mod lockset;
pub mod partition;
pub mod shard;

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use sim_mem::ObjKind;
use sim_sync::LockClass;

pub use hb::{Chan, HappensBefore};
pub use lockdep::Lockdep;
pub use lockset::Lockset;
pub use partition::{PartitionLint, PartitionPolicy};
pub use shard::{ShardCert, ShardClass, ShardPolicy, ShardReport};

/// Upper bound on diagnostics retained in a [`CheckReport`]; violation
/// *counts* keep accumulating past it.
pub const MAX_DIAGNOSTICS: usize = 16;

/// Bitmask over every lock class (for candidate locksets).
pub const ALL_CLASSES: u16 = (1 << LockClass::COUNT) - 1;

/// Returns the lockset bit for a lock class.
#[must_use]
pub fn class_bit(class: LockClass) -> u16 {
    1 << (class as u16)
}

/// Renders a class bitmask as `{A, B}` for diagnostics; the empty mask
/// renders as `{no locks held}` so reports stay readable on their own.
#[must_use]
pub fn mask_names(mask: u16) -> String {
    if mask == 0 {
        return "{no locks held}".to_string();
    }
    let names: Vec<&str> = LockClass::ALL
        .iter()
        .filter(|&&c| mask & class_bit(c) != 0)
        .map(|c| c.name())
        .collect();
    format!("{{{}}}", names.join(", "))
}

/// Which detector produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Detector {
    /// Lock acquisition-order inversion (potential deadlock).
    Lockdep,
    /// Empty candidate lockset on a shared object (data race).
    Lockset,
    /// Missing happens-before edge between cross-core writes.
    Hb,
    /// Object kind exceeded its shard-policy ownership class.
    Shard,
    /// Cross-core touch of per-core partitioned state.
    Partition,
    /// A table invariant that previously `assert!`ed.
    Invariant,
}

impl Detector {
    /// Short stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Detector::Lockdep => "lockdep",
            Detector::Lockset => "lockset",
            Detector::Hb => "hb",
            Detector::Shard => "shard",
            Detector::Partition => "partition",
            Detector::Invariant => "invariant",
        }
    }
}

/// One diagnosed violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The detector that fired.
    pub detector: Detector,
    /// What the violation is about: a `LockClass` ordering pair, an
    /// `ObjKind`, or a partition lint name.
    pub subject: String,
    /// Cores involved (observing core first).
    pub cores: Vec<u16>,
    /// Trace-label path of the op that observed the violation.
    pub site: String,
    /// Human-readable explanation including witness sites.
    pub detail: String,
}

impl fmt::Display for Violation {
    /// One actionable line: detector, subject (object kind or lock
    /// pair), every witness core, the observing site, and the detail.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cores: Vec<String> = self.cores.iter().map(ToString::to_string).collect();
        write!(
            f,
            "[{}] {} cores=[{}] at {}: {}",
            self.detector.name(),
            self.subject,
            cores.join(","),
            self.site,
            self.detail
        )
    }
}

/// Violation counts plus the first [`MAX_DIAGNOSTICS`] diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Lock-order inversions (counted once per class pair).
    pub lockdep: u64,
    /// Empty-lockset races (counted once per object).
    pub lockset: u64,
    /// Happens-before races (counted once per object generation).
    pub hb: u64,
    /// Shard-policy violations (counted once per object).
    pub shard: u64,
    /// Partition-lint violations.
    pub partition: u64,
    /// Soft table-invariant breaks.
    pub invariant: u64,
    /// First diagnostics, in detection order.
    pub diagnostics: Vec<Violation>,
    /// Certified shard inventory (present when the checker is enabled).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard_report: Option<ShardReport>,
}

impl CheckReport {
    /// Total violations across all detectors.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.lockdep + self.lockset + self.hb + self.shard + self.partition + self.invariant
    }

    /// Whether no detector fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    fn record(&mut self, v: Violation) {
        match v.detector {
            Detector::Lockdep => self.lockdep += 1,
            Detector::Lockset => self.lockset += 1,
            Detector::Hb => self.hb += 1,
            Detector::Shard => self.shard += 1,
            Detector::Partition => self.partition += 1,
            Detector::Invariant => self.invariant += 1,
        }
        if self.diagnostics.len() < MAX_DIAGNOSTICS {
            self.diagnostics.push(v);
        }
    }

    /// Folds another lane's report into this one. Counters sum;
    /// diagnostics append (cores remapped by `core_offset` into the
    /// merged machine's numbering) up to [`MAX_DIAGNOSTICS`]; the shard
    /// inventories merge kind-by-kind. The parallel engine calls this
    /// in lane order, so a merged report is deterministic.
    pub fn merge(&mut self, other: &CheckReport, core_offset: u16) {
        self.lockdep += other.lockdep;
        self.lockset += other.lockset;
        self.hb += other.hb;
        self.shard += other.shard;
        self.partition += other.partition;
        self.invariant += other.invariant;
        for v in &other.diagnostics {
            if self.diagnostics.len() >= MAX_DIAGNOSTICS {
                break;
            }
            let mut v = v.clone();
            for c in &mut v.cores {
                *c += core_offset;
            }
            self.diagnostics.push(v);
        }
        match (&mut self.shard_report, &other.shard_report) {
            (Some(mine), Some(theirs)) => mine.merge(theirs, core_offset),
            (None, Some(theirs)) => {
                let mut base = ShardReport::default();
                base.merge(theirs, core_offset);
                self.shard_report = Some(base);
            }
            _ => {}
        }
    }
}

/// A write recorded during the current op, evaluated at commit time
/// against the full set of lock classes the op acquired. Commit-time
/// evaluation tolerates the kernel idiom of touching an object in the
/// same critical region but textually before the lock call.
#[derive(Debug)]
struct WriteRec {
    slot: u32,
    gen: u64,
    kind: ObjKind,
    site: String,
}

/// Per-core state for the op currently being built.
#[derive(Debug, Default)]
struct CoreState {
    /// Stack of trace labels, giving the site string for diagnostics.
    sites: Vec<&'static str>,
    /// Bitmask of lock classes acquired so far in this op.
    classes: u16,
    /// Object writes performed so far in this op.
    writes: Vec<WriteRec>,
}

impl CoreState {
    fn site(&self) -> String {
        if self.sites.is_empty() {
            "op".to_string()
        } else {
            self.sites.join("/")
        }
    }
}

#[derive(Debug)]
struct CheckState {
    policy: PartitionPolicy,
    cores: Vec<CoreState>,
    lockdep: Lockdep,
    lockset: Lockset,
    hb: HappensBefore,
    shard: ShardCert,
    /// When set, soft invariant diagnostics panic immediately: with no
    /// fault schedule active they are real bugs, not expected damage.
    strict: bool,
    report: CheckReport,
}

impl CheckState {
    fn core(&mut self, core: u16) -> &mut CoreState {
        let idx = core as usize;
        if idx >= self.cores.len() {
            self.cores.resize_with(idx + 1, CoreState::default);
        }
        &mut self.cores[idx]
    }
}

/// Cheap cloneable handle to the sanitizer state (or to nothing).
///
/// Mirrors `sim_trace::Tracer`: a disabled checker is a `None` and
/// every hook returns immediately.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    inner: Option<Rc<RefCell<CheckState>>>,
}

impl Checker {
    /// A checker that ignores everything (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live checker for `cores` cores under `policy`.
    #[must_use]
    pub fn enabled(cores: u16, policy: PartitionPolicy) -> Self {
        let state = CheckState {
            policy,
            cores: (0..cores).map(|_| CoreState::default()).collect(),
            lockdep: Lockdep::new(usize::from(cores)),
            lockset: Lockset::new(),
            hb: HappensBefore::new(usize::from(cores)),
            shard: ShardCert::default(),
            strict: false,
            report: CheckReport::default(),
        };
        Self {
            inner: Some(Rc::new(RefCell::new(state))),
        }
    }

    /// Sets the per-kind shard-class bounds the certifier enforces.
    pub fn set_shard_policy(&self, policy: ShardPolicy) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().shard.set_policy(policy);
        }
    }

    /// Arms strict mode: soft invariant diagnostics become panics.
    pub fn set_strict(&self, strict: bool) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().strict = strict;
        }
    }

    /// Whether this checker records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a fresh op on `core`, clearing its per-op state and
    /// advancing the core's happens-before epoch.
    pub fn op_begin(&self, core: u16) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            let cs = st.core(core);
            cs.sites.clear();
            cs.classes = 0;
            cs.writes.clear();
            st.hb.tick(core);
        }
    }

    /// Commits the op on `core`: evaluates every recorded write against
    /// the op's full acquired-class set (lockset), the vector clocks
    /// (happens-before), and the ownership history (shard certifier),
    /// then flushes deferred channel publishes and flags leaked lock
    /// scopes.
    pub fn op_commit(&self, core: u16) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            let cs = st.core(core);
            let mask = cs.classes;
            let writes = std::mem::take(&mut cs.writes);
            cs.sites.clear();
            cs.classes = 0;
            let CheckState {
                lockset,
                lockdep,
                hb,
                shard,
                report,
                ..
            } = &mut *st;
            for w in &writes {
                let ordered = hb.write(w.slot, w.gen, w.kind, core, &w.site, report);
                lockset.write(w.slot, w.gen, w.kind, core, mask, &w.site, report);
                shard.write(w.slot, w.gen, w.kind, core, &w.site, ordered, report);
            }
            hb.flush(core);
            for node in lockdep.clear_core(core) {
                report.record(Violation {
                    detector: Detector::Invariant,
                    subject: "lock_scope".to_string(),
                    cores: vec![core],
                    site: "op".to_string(),
                    detail: format!(
                        "scoped hold of {} never released before op commit",
                        lockdep::node_name(node)
                    ),
                });
            }
        }
    }

    /// Marks the boundary between two logical kernel entries (packets,
    /// syscalls) batched into one costed op: the writes recorded since
    /// the previous boundary are evaluated against the lock classes
    /// acquired since then, so one entry's locks cannot vouch for
    /// another entry's writes. Lock classes still scope-held across the
    /// boundary carry forward into the next entry's mask.
    pub fn boundary(&self, core: u16) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            let cs = st.core(core);
            let mask = cs.classes;
            let writes = std::mem::take(&mut cs.writes);
            let CheckState {
                lockset,
                lockdep,
                hb,
                shard,
                report,
                ..
            } = &mut *st;
            for w in &writes {
                let ordered = hb.write(w.slot, w.gen, w.kind, core, &w.site, report);
                lockset.write(w.slot, w.gen, w.kind, core, mask, &w.site, report);
                shard.write(w.slot, w.gen, w.kind, core, &w.site, ordered, report);
            }
            hb.flush(core);
            hb.tick(core);
            let held = lockdep.held_mask(core);
            st.core(core).classes = held;
        }
    }

    /// Pushes a trace label onto `core`'s site stack.
    pub fn site_enter(&self, core: u16, label: &'static str) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().core(core).sites.push(label);
        }
    }

    /// Pops the innermost trace label from `core`'s site stack.
    pub fn site_exit(&self, core: u16) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().core(core).sites.pop();
        }
    }

    /// Records a lock acquisition on `core`. `scoped` acquisitions stay
    /// on the held stack until [`Checker::on_release`]; transient ones
    /// only contribute ordering edges and the op's class mask.
    pub fn on_acquire(&self, core: u16, class: LockClass, subclass: u8, scoped: bool) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            st.core(core).classes |= class_bit(class);
            let site = st.core(core).site();
            let CheckState {
                lockdep,
                hb,
                report,
                ..
            } = &mut *st;
            // Acquire is the join half of the lock channel; the publish
            // half (release) is deferred to commit so it carries the
            // epoch that stamps this op's writes.
            hb.join(core, Chan::Lock(class));
            hb.defer_publish(core, Chan::Lock(class));
            lockdep.acquire(core, class, subclass, scoped, &site, report);
        }
    }

    /// Joins a happens-before channel into `core`'s clock: the receive
    /// half of a cross-core handoff (softirq dequeue, `epoll_wait`,
    /// timer expiry).
    pub fn hb_join(&self, core: u16, chan: Chan) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().hb.join(core, chan);
        }
    }

    /// Schedules a publish of `core`'s clock onto a happens-before
    /// channel, flushed when the current op commits: the send half of a
    /// cross-core handoff (softirq enqueue, epoll ready-list post,
    /// timer arm).
    pub fn hb_publish(&self, core: u16, chan: Chan) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().hb.defer_publish(core, chan);
        }
    }

    /// Releases a scoped hold previously recorded on `core`.
    pub fn on_release(&self, core: u16, class: LockClass, subclass: u8) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().lockdep.release(core, class, subclass);
        }
    }

    /// Records a write to cache object `slot` (generation `gen`).
    pub fn on_write(&self, core: u16, slot: u32, gen: u64, kind: ObjKind) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            let site = st.core(core).site();
            st.core(core).writes.push(WriteRec {
                slot,
                gen,
                kind,
                site,
            });
        }
    }

    /// Partition lint: `actor` touched state owned by `owner`. Records
    /// a violation when the cores differ and `lint` is armed under the
    /// current policy.
    pub fn lint(&self, lint: PartitionLint, actor: u16, owner: u16) {
        if actor == owner {
            return;
        }
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            if !lint.armed(st.policy) {
                return;
            }
            let site = st.core(actor).site();
            st.report.record(Violation {
                detector: Detector::Partition,
                subject: lint.subject().to_string(),
                cores: vec![actor, owner],
                site,
                detail: format!("core {actor} {} owned by core {owner}", lint.describe()),
            });
        }
    }

    /// Reports a soft table-invariant break (a former `assert!`). In
    /// strict mode — no fault schedule active, so the tables have no
    /// excuse — this panics on the spot, restoring the pre-fault-PR
    /// hard-failure behaviour.
    ///
    /// # Panics
    /// When strict mode is armed via [`Checker::set_strict`].
    pub fn invariant_violation(&self, subject: &str, core: u16, detail: String) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            let site = st.core(core).site();
            assert!(
                !st.strict,
                "table invariant broken with no fault schedule active: \
                 {subject} on core {core} at {site}: {detail}"
            );
            st.report.record(Violation {
                detector: Detector::Invariant,
                subject: subject.to_string(),
                cores: vec![core],
                site,
                detail,
            });
        }
    }

    /// Snapshot of the accumulated report (`None` when disabled),
    /// including the certified shard inventory.
    #[must_use]
    pub fn report(&self) -> Option<CheckReport> {
        self.inner.as_ref().map(|inner| {
            let st = inner.borrow();
            let mut report = st.report.clone();
            report.shard_report = Some(st.shard.report());
            report
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> Checker {
        Checker::enabled(4, PartitionPolicy::all())
    }

    #[test]
    fn disabled_checker_records_nothing() {
        let c = Checker::disabled();
        assert!(!c.is_enabled());
        c.op_begin(0);
        c.on_acquire(0, LockClass::Slock, 0, true);
        c.on_write(0, 7, 1, ObjKind::Tcb);
        c.lint(PartitionLint::TimerBase, 0, 3);
        c.op_commit(0);
        assert!(c.report().is_none());
    }

    #[test]
    fn ordered_acquisitions_are_clean() {
        let c = checker();
        for core in 0..4u16 {
            c.op_begin(core);
            c.on_acquire(core, LockClass::Slock, 0, true);
            c.on_acquire(core, LockClass::EhashLock, 0, false);
            c.on_release(core, LockClass::Slock, 0);
            c.op_commit(core);
        }
        assert!(c.report().unwrap().is_clean());
    }

    #[test]
    fn inversion_is_reported_once_with_both_sites() {
        let c = checker();
        c.op_begin(0);
        c.site_enter(0, "softirq");
        c.on_acquire(0, LockClass::Slock, 0, true);
        c.on_acquire(0, LockClass::BaseLock, 0, false);
        c.on_release(0, LockClass::Slock, 0);
        c.op_commit(0);
        for _ in 0..3 {
            c.op_begin(1);
            c.site_enter(1, "timer");
            c.on_acquire(1, LockClass::BaseLock, 0, true);
            c.on_acquire(1, LockClass::Slock, 0, false);
            c.on_release(1, LockClass::BaseLock, 0);
            c.op_commit(1);
        }
        let r = c.report().unwrap();
        assert_eq!(r.lockdep, 1, "inversion reported exactly once");
        let d = &r.diagnostics[0];
        assert_eq!(d.detector, Detector::Lockdep);
        assert!(d.subject.contains("slock") && d.subject.contains("base.lock"));
        assert!(d.detail.contains("softirq"), "witness site kept: {d:?}");
    }

    #[test]
    fn subclass_orderings_do_not_self_report() {
        let c = checker();
        // Listen slock (subclass 1) then child slock (subclass 0):
        // distinct lockdep nodes, no AA report.
        c.op_begin(0);
        c.on_acquire(0, LockClass::Slock, 1, true);
        c.on_acquire(0, LockClass::Slock, 0, false);
        c.on_release(0, LockClass::Slock, 1);
        c.op_commit(0);
        let r = c.report().unwrap();
        assert!(r.is_clean(), "{r:?}");
    }

    #[test]
    fn recursive_same_node_acquire_is_aa_violation() {
        let c = checker();
        c.op_begin(0);
        c.on_acquire(0, LockClass::Slock, 0, true);
        c.on_acquire(0, LockClass::Slock, 0, false);
        c.on_release(0, LockClass::Slock, 0);
        c.op_commit(0);
        let r = c.report().unwrap();
        assert_eq!(r.lockdep, 1);
        assert!(r.diagnostics[0].detail.contains("recursive"));
    }

    #[test]
    fn consistent_lock_discipline_has_no_race() {
        let c = checker();
        for core in 0..4u16 {
            c.op_begin(core);
            c.on_acquire(core, LockClass::Slock, 0, false);
            c.on_write(core, 42, 1, ObjKind::Tcb);
            c.op_commit(core);
        }
        assert!(c.report().unwrap().is_clean());
    }

    #[test]
    fn empty_lockset_race_reports_kind_and_cores() {
        let c = checker();
        c.op_begin(0);
        c.on_acquire(0, LockClass::BaseLock, 0, false);
        c.on_write(0, 42, 1, ObjKind::SockBuf);
        c.op_commit(0);
        // Handover: shared, candidate set = {slock}.
        c.op_begin(2);
        c.on_acquire(2, LockClass::Slock, 0, false);
        c.on_write(2, 42, 1, ObjKind::SockBuf);
        c.op_commit(2);
        // Disjoint write from the first core empties the set.
        c.op_begin(0);
        c.site_enter(0, "softirq");
        c.on_acquire(0, LockClass::BaseLock, 0, false);
        c.on_write(0, 42, 1, ObjKind::SockBuf);
        c.op_commit(0);
        let r = c.report().unwrap();
        assert_eq!(r.lockset, 1);
        // The same undisciplined handoff also lacks a happens-before
        // edge (disjoint lock channels), so the HB detector agrees.
        assert_eq!(r.hb, 1);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.detector == Detector::Lockset)
            .unwrap();
        assert_eq!(d.subject, "sock_buf");
        assert_eq!(d.cores, vec![2, 0], "previous then current writer");
        assert_eq!(d.site, "softirq");
    }

    #[test]
    fn single_core_writes_never_race() {
        let c = checker();
        for i in 0..20u64 {
            c.op_begin(1);
            // No locks at all — still exclusive to core 1.
            c.on_write(1, 9, 1, ObjKind::Tcb);
            c.op_commit(1);
            let _ = i;
        }
        assert!(c.report().unwrap().is_clean());
    }

    #[test]
    fn slab_reuse_resets_lockset_state() {
        let c = checker();
        c.op_begin(0);
        c.on_acquire(0, LockClass::Slock, 0, false);
        c.on_write(0, 5, 1, ObjKind::Tcb);
        c.op_commit(0);
        // Same slot, new generation, different core + disjoint lock:
        // fresh object, so this is a first (exclusive) access.
        c.op_begin(3);
        c.on_acquire(3, LockClass::EpLock, 0, false);
        c.on_write(3, 5, 2, ObjKind::Epoll);
        c.op_commit(3);
        assert!(c.report().unwrap().is_clean());
    }

    #[test]
    fn touch_before_lock_in_same_op_is_clean() {
        let c = checker();
        c.op_begin(0);
        c.on_acquire(0, LockClass::Slock, 0, false);
        c.on_write(0, 11, 1, ObjKind::Tcb);
        c.op_commit(0);
        // Second core writes *before* its lock call, kernel-style; the
        // commit-time mask still contains Slock.
        c.op_begin(1);
        c.on_write(1, 11, 1, ObjKind::Tcb);
        c.on_acquire(1, LockClass::Slock, 0, false);
        c.op_commit(1);
        assert!(c.report().unwrap().is_clean());
    }

    #[test]
    fn boundary_isolates_entries_within_one_op() {
        let c = checker();
        // Core 0 writes under the slock; core 1's op batches two
        // entries: one takes the slock (no write), the next writes the
        // same object lockless. Without the boundary the op-wide mask
        // would hide the race.
        c.op_begin(0);
        c.on_acquire(0, LockClass::Slock, 0, false);
        c.on_write(0, 4, 1, ObjKind::Tcb);
        c.op_commit(0);
        c.op_begin(1);
        c.on_acquire(1, LockClass::Slock, 0, false);
        c.on_write(1, 4, 1, ObjKind::Tcb);
        c.boundary(1);
        c.on_write(1, 4, 1, ObjKind::Tcb);
        c.op_commit(1);
        // Second entry's mask is empty; object already shared with
        // candidate set {slock} — the intersection empties.
        let r = c.report().unwrap();
        assert_eq!(r.lockset, 1, "{r:#?}");
    }

    #[test]
    fn boundary_carries_scoped_holds_forward() {
        let c = checker();
        c.op_begin(0);
        c.on_acquire(0, LockClass::Slock, 0, false);
        c.on_write(0, 6, 1, ObjKind::Tcb);
        c.op_commit(0);
        c.op_begin(1);
        c.on_acquire(1, LockClass::Slock, 0, true); // scoped, spans boundary
        c.boundary(1);
        c.on_write(1, 6, 1, ObjKind::Tcb);
        c.on_release(1, LockClass::Slock, 0);
        c.op_commit(1);
        assert!(c.report().unwrap().is_clean());
    }

    #[test]
    fn partition_lints_respect_policy() {
        let c = Checker::enabled(
            4,
            PartitionPolicy {
                local_listen: true,
                local_est: false,
                rfd: false,
                timer_affinity: false,
            },
        );
        c.op_begin(0);
        c.lint(PartitionLint::LocalEst, 0, 1); // disarmed
        c.lint(PartitionLint::TimerBase, 0, 1); // disarmed
        c.lint(PartitionLint::LocalListen, 0, 0); // same core
        c.lint(PartitionLint::LocalListen, 0, 2); // fires
        c.op_commit(0);
        let r = c.report().unwrap();
        assert_eq!(r.partition, 1);
        assert_eq!(r.diagnostics[0].subject, "local_listen");
        assert_eq!(r.diagnostics[0].cores, vec![0, 2]);
    }

    #[test]
    fn leaked_scope_flagged_at_commit() {
        let c = checker();
        c.op_begin(0);
        c.on_acquire(0, LockClass::Slock, 0, true);
        c.op_commit(0); // no release
        let r = c.report().unwrap();
        assert_eq!(r.invariant, 1);
        assert!(r.diagnostics[0].detail.contains("never released"));
    }

    #[test]
    fn diagnostics_cap_counts_keep_growing() {
        let c = checker();
        for i in 0..(MAX_DIAGNOSTICS as u16 + 10) {
            c.invariant_violation("test", 0, format!("break {i}"));
        }
        let r = c.report().unwrap();
        assert_eq!(r.invariant, MAX_DIAGNOSTICS as u64 + 10);
        assert_eq!(r.diagnostics.len(), MAX_DIAGNOSTICS);
        assert!(!r.is_clean());
    }

    #[test]
    fn mask_names_renders_set_members() {
        let m = class_bit(LockClass::Slock) | class_bit(LockClass::BaseLock);
        let s = mask_names(m);
        assert!(s.contains("slock") && s.contains("base.lock"), "{s}");
        assert_eq!(mask_names(0), "{no locks held}");
    }
}
