//! Eraser-style candidate-lockset race detection.
//!
//! Each `sim-mem` object starts *exclusive* to the first core that
//! writes it (initialization is race-free by construction). Once a
//! second core writes, the object is *shared*: its candidate lockset —
//! the set of lock classes that could be protecting it — is refined to
//! the intersection of the classes held by every writing op from then
//! on. An empty candidate set means no common lock orders those writes:
//! a data race.
//!
//! Deliberate coarsenings, documented for anyone tuning the detector:
//!
//! - **Class-level sets.** The listen socket's `slock` and a child's
//!   `slock` are different instances but the same discipline; tracking
//!   instances would flag the accept-path handover as a false race.
//! - **Writes only.** The stack's lock-free lookups (RCU-style reads of
//!   the established/listen tables) are idiomatic and not tracked.
//! - **Op-commit evaluation.** A write is judged against every class
//!   the op acquired anywhere, because kernel code routinely touches an
//!   object a few lines above the lock call that covers it.
//! - **Generation keys.** Slab slots recycle; a new allocation
//!   generation resets the state machine.

use std::collections::HashMap;

use sim_mem::ObjKind;

use crate::{mask_names, CheckReport, Detector, Violation, ALL_CLASSES};

#[derive(Debug)]
struct ObjState {
    gen: u64,
    first_core: u16,
    /// The most recent writer (the other half of a race witness).
    last_core: u16,
    exclusive: bool,
    /// Candidate lockset (bitmask over `LockClass`).
    set: u16,
    reported: bool,
}

/// The per-object candidate-lockset state machine.
#[derive(Debug, Default)]
pub struct Lockset {
    objs: HashMap<u32, ObjState>,
}

impl Lockset {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one committed write: object `slot` (generation `gen`) was
    /// written by an op on `core` that acquired the classes in `mask`.
    #[allow(clippy::too_many_arguments)] // flat hot-path call, every field used
    pub fn write(
        &mut self,
        slot: u32,
        gen: u64,
        kind: ObjKind,
        core: u16,
        mask: u16,
        site: &str,
        report: &mut CheckReport,
    ) {
        let st = self.objs.entry(slot).or_insert(ObjState {
            gen,
            first_core: core,
            last_core: core,
            exclusive: true,
            set: ALL_CLASSES,
            reported: false,
        });
        if st.gen != gen {
            // Slab slot recycled: a different object now lives here.
            *st = ObjState {
                gen,
                first_core: core,
                last_core: core,
                exclusive: true,
                set: ALL_CLASSES,
                reported: false,
            };
            return;
        }
        if st.exclusive {
            if st.first_core == core {
                return;
            }
            st.exclusive = false;
        }
        let prev = st.last_core;
        st.last_core = core;
        st.set &= mask;
        if st.set == 0 && !st.reported {
            st.reported = true;
            report.record(Violation {
                detector: Detector::Lockset,
                subject: kind.name().to_string(),
                cores: vec![prev, core],
                site: site.to_string(),
                detail: format!(
                    "write to shared {} on core {core} holding {} empties the candidate \
                     lockset (previous writer core {prev}, first writer core {})",
                    kind.name(),
                    mask_names(mask),
                    st.first_core,
                ),
            });
        }
    }

    /// Number of objects currently tracked.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.objs.len()
    }

    /// Whether any tracked object has raced.
    #[must_use]
    pub fn any_raced(&self) -> bool {
        self.objs.values().any(|s| s.reported)
    }

    /// Forgets an object's state (e.g. when its slot is freed).
    pub fn forget(&mut self, slot: u32) {
        self.objs.remove(&slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class_bit;
    use sim_sync::LockClass;

    const SLOCK: u16 = 1 << (LockClass::Slock as u16);
    const BASE: u16 = 1 << (LockClass::BaseLock as u16);

    #[test]
    fn shared_writes_under_common_class_are_clean() {
        let mut ls = Lockset::new();
        let mut r = CheckReport::default();
        ls.write(1, 1, ObjKind::Tcb, 0, SLOCK | BASE, "a", &mut r);
        ls.write(1, 1, ObjKind::Tcb, 1, SLOCK, "b", &mut r);
        ls.write(1, 1, ObjKind::Tcb, 2, SLOCK | BASE, "c", &mut r);
        assert!(r.is_clean());
        assert!(!ls.any_raced());
    }

    #[test]
    fn disjoint_locks_race_once() {
        let mut ls = Lockset::new();
        let mut r = CheckReport::default();
        ls.write(7, 3, ObjKind::SockBuf, 0, SLOCK, "app", &mut r);
        // Handover write: shared from here, candidate set = {base.lock}.
        ls.write(7, 3, ObjKind::SockBuf, 2, BASE, "softirq", &mut r);
        assert!(r.is_clean(), "handover alone is not yet a race");
        // The next disjoint write empties the candidate set.
        ls.write(7, 3, ObjKind::SockBuf, 0, SLOCK, "app", &mut r);
        ls.write(7, 3, ObjKind::SockBuf, 2, BASE, "softirq", &mut r);
        assert_eq!(r.lockset, 1, "reported exactly once per object");
        assert_eq!(
            r.diagnostics[0].cores,
            vec![2, 0],
            "previous then current writer"
        );
        assert_eq!(r.diagnostics[0].subject, "sock_buf");
        assert_eq!(r.diagnostics[0].site, "app");
    }

    #[test]
    fn first_core_initialization_is_unrefined() {
        let mut ls = Lockset::new();
        let mut r = CheckReport::default();
        // Lock-free init writes on the owning core are fine.
        ls.write(4, 1, ObjKind::Epoll, 3, 0, "init", &mut r);
        ls.write(4, 1, ObjKind::Epoll, 3, 0, "init", &mut r);
        // The handover write carries the real discipline.
        ls.write(
            4,
            1,
            ObjKind::Epoll,
            1,
            class_bit(LockClass::EpLock),
            "post",
            &mut r,
        );
        assert!(r.is_clean());
    }

    #[test]
    fn generation_change_resets_state() {
        let mut ls = Lockset::new();
        let mut r = CheckReport::default();
        ls.write(9, 1, ObjKind::Tcb, 0, SLOCK, "a", &mut r);
        ls.write(9, 1, ObjKind::Tcb, 1, SLOCK, "b", &mut r);
        // Recycled slot: unrelated discipline must not intersect.
        ls.write(9, 2, ObjKind::TimerBase, 3, BASE, "c", &mut r);
        ls.write(9, 2, ObjKind::TimerBase, 2, BASE, "d", &mut r);
        assert!(r.is_clean());
    }
}
