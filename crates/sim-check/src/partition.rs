//! Fastsocket partition invariants.
//!
//! The paper's scalability argument is that connection state becomes
//! per-core: local listen tables (§3.2), local established tables
//! (§3.3), RFD steering (§3.4), and per-core timer bases. These lints
//! assert the *dynamic* half of that claim — no core ever touches
//! another core's partition — for whichever features the kernel variant
//! under test actually enables.

use serde::{Deserialize, Serialize};

/// Which partition invariants are armed for a run.
///
/// Derived from the kernel variant: linting a partition the variant
/// does not implement (e.g. timer affinity on stock Linux, where remote
/// `mod_timer` is legitimate) would drown real findings in noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionPolicy {
    /// Local Listen Table entries are core-private.
    pub local_listen: bool,
    /// Local Established Table entries are core-private.
    pub local_est: bool,
    /// RFD-steered packets must land on the core they were steered to.
    pub rfd: bool,
    /// Per-core timer bases are only touched by their owner. Armed only
    /// under the full Fastsocket partition (local tables + RFD, no
    /// dedicated stack core): everywhere else, remote timer access is
    /// legitimate kernel behavior.
    pub timer_affinity: bool,
}

impl PartitionPolicy {
    /// Every lint armed (the full Fastsocket partition).
    #[must_use]
    pub fn all() -> Self {
        Self {
            local_listen: true,
            local_est: true,
            rfd: true,
            timer_affinity: true,
        }
    }
}

/// One partitioned-ownership invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionLint {
    /// A core used another core's local listen table entry.
    LocalListen,
    /// A core used another core's local established table entry.
    LocalEst,
    /// An RFD-steered packet arrived on the wrong core.
    RfdDelivery,
    /// A per-core timer base was touched by a non-owner.
    TimerBase,
    /// `epoll_wait` ran on a core other than the instance's owner.
    /// Always armed: applications are pinned in every variant.
    EpollWait,
}

impl PartitionLint {
    /// Whether this lint fires under `policy`.
    #[must_use]
    pub fn armed(self, policy: PartitionPolicy) -> bool {
        match self {
            PartitionLint::LocalListen => policy.local_listen,
            PartitionLint::LocalEst => policy.local_est,
            PartitionLint::RfdDelivery => policy.rfd,
            PartitionLint::TimerBase => policy.timer_affinity,
            PartitionLint::EpollWait => true,
        }
    }

    /// Stable subject string for reports.
    #[must_use]
    pub fn subject(self) -> &'static str {
        match self {
            PartitionLint::LocalListen => "local_listen",
            PartitionLint::LocalEst => "local_est",
            PartitionLint::RfdDelivery => "rfd_delivery",
            PartitionLint::TimerBase => "timer_base",
            PartitionLint::EpollWait => "epoll_wait",
        }
    }

    /// Verb phrase for the diagnostic detail line.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            PartitionLint::LocalListen => "touched a local listen table entry",
            PartitionLint::LocalEst => "touched a local established table entry",
            PartitionLint::RfdDelivery => "received an RFD-steered packet",
            PartitionLint::TimerBase => "touched a per-core timer base",
            PartitionLint::EpollWait => "ran epoll_wait on an instance",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_arms_only_epoll_wait() {
        let p = PartitionPolicy::default();
        assert!(!PartitionLint::LocalListen.armed(p));
        assert!(!PartitionLint::LocalEst.armed(p));
        assert!(!PartitionLint::RfdDelivery.armed(p));
        assert!(!PartitionLint::TimerBase.armed(p));
        assert!(PartitionLint::EpollWait.armed(p));
    }

    #[test]
    fn full_policy_arms_everything() {
        let p = PartitionPolicy::all();
        for lint in [
            PartitionLint::LocalListen,
            PartitionLint::LocalEst,
            PartitionLint::RfdDelivery,
            PartitionLint::TimerBase,
            PartitionLint::EpollWait,
        ] {
            assert!(lint.armed(p), "{lint:?}");
        }
    }
}
