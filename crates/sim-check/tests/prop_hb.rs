//! Property tests relating the lockset detector and the
//! happens-before (vector-clock) detector.
//!
//! The classic containment: a *lock-disciplined* schedule — every
//! write to an object holds that object's designated lock — is clean
//! under both detectors, because each lock release publishes the
//! writer's clock on the lock's channel and each acquire joins it.
//! The containment is deliberately NOT claimed for arbitrary
//! schedules: a lock-free handoff over a non-lock channel (softirq
//! steer, epoll wakeup) is HB-clean yet lockset-racy, and an
//! exclusive-phase two-write pattern is lockset-clean yet HB-racy —
//! the `SilentHandoff` fault knob exploits exactly that gap.

use proptest::prelude::*;
use sim_check::{Chan, Checker, PartitionPolicy};
use sim_mem::ObjKind;
use sim_sync::LockClass;

/// The designated lock class for a slot, fixing the discipline.
fn class_for(slot: u32) -> LockClass {
    LockClass::ALL[slot as usize % LockClass::COUNT]
}

proptest! {
    /// Lock-disciplined random schedules are clean under the lockset
    /// detector AND the happens-before detector: consecutive writes
    /// under a common class are ordered by the lock's channel, so the
    /// vector clocks agree with the lockset verdict.
    #[test]
    fn lock_disciplined_schedules_are_clean_under_both(
        writes in collection::vec((0u16..6, 0u32..5), 1..120)
    ) {
        let c = Checker::enabled(6, PartitionPolicy::default());
        for (core, slot) in &writes {
            c.op_begin(*core);
            c.on_acquire(*core, class_for(*slot), 0, false);
            c.on_write(*core, *slot, 1, ObjKind::Tcb);
            c.op_commit(*core);
        }
        let r = c.report().unwrap();
        prop_assert_eq!(r.lockset, 0, "discipline held: {:?}", r.diagnostics);
        prop_assert_eq!(r.hb, 0, "lock channels must order the writes: {:?}", r.diagnostics);
    }

    /// With no locks and no channels at all, the two detectors agree
    /// exactly: a report fires iff some slot was written by two
    /// distinct cores (and the HB detector names it at least once).
    #[test]
    fn lockless_schedules_make_both_detectors_agree(
        writes in collection::vec((0u16..4, 0u32..6), 1..80)
    ) {
        let c = Checker::enabled(4, PartitionPolicy::default());
        for (core, slot) in &writes {
            c.op_begin(*core);
            c.on_write(*core, *slot, 1, ObjKind::SockBuf);
            c.op_commit(*core);
        }
        let mut contested = false;
        for (i, (core, slot)) in writes.iter().enumerate() {
            if writes[..i].iter().any(|(c2, s2)| s2 == slot && c2 != core) {
                contested = true;
            }
        }
        let r = c.report().unwrap();
        prop_assert_eq!(r.lockset > 0, contested, "{:?}", r.diagnostics);
        prop_assert_eq!(r.hb > 0, contested, "{:?}", r.diagnostics);
    }

    /// The other side of the gap: a lock-free ownership handoff over
    /// an explicit channel (the softirq-steer pattern) is HB-clean —
    /// the vector clocks see the publish/join edge — while the lockset
    /// detector, blind to channels, suspects the object as soon as a
    /// second core writes it. HB-clean does NOT imply lockset-clean.
    #[test]
    fn channel_handoffs_are_hb_clean_but_lockset_suspect(
        chain in collection::vec(0u16..4, 2..10)
    ) {
        let c = Checker::enabled(4, PartitionPolicy::default());
        let mut prev: Option<u16> = None;
        for (i, &core) in chain.iter().enumerate() {
            c.op_begin(core);
            if let Some(p) = prev {
                if p != core {
                    // The previous owner published on this channel.
                    c.hb_join(core, Chan::Softirq(core));
                }
            }
            c.on_write(core, 7, 1, ObjKind::SockBuf);
            if let Some(&next) = chain.get(i + 1) {
                if next != core {
                    c.hb_publish(core, Chan::Softirq(next));
                }
            }
            c.op_commit(core);
            prev = Some(core);
        }
        let distinct_cores = {
            let mut cs: Vec<u16> = chain.clone();
            cs.sort_unstable();
            cs.dedup();
            cs.len()
        };
        let r = c.report().unwrap();
        prop_assert_eq!(r.hb, 0, "every handoff rode a channel: {:?}", r.diagnostics);
        prop_assert_eq!(
            r.lockset > 0,
            distinct_cores > 1,
            "lockset cannot see channels: {:?}",
            r.diagnostics
        );
    }
}
