//! Property tests for the sanitizer state machines.

use proptest::prelude::*;
use sim_check::{CheckReport, Checker, Lockdep, PartitionPolicy};
use sim_mem::ObjKind;
use sim_sync::LockClass;

/// Sorted, deduplicated classes — an order-respecting acquisition list.
fn ascending(indices: &[usize]) -> Vec<LockClass> {
    let mut idx: Vec<usize> = indices.to_vec();
    idx.sort_unstable();
    idx.dedup();
    idx.into_iter().map(|i| LockClass::ALL[i]).collect()
}

proptest! {
    /// Any schedule whose every op acquires classes in ascending enum
    /// order respects one global order, so the graph stays acyclic and
    /// lockdep stays silent.
    #[test]
    fn ordered_schedules_never_report(
        ops in collection::vec(
            (0u16..8, collection::vec(0usize..LockClass::COUNT, 1..5)),
            1..60,
        )
    ) {
        let mut ld = Lockdep::new(8);
        let mut report = CheckReport::default();
        for (core, indices) in &ops {
            // Hold everything scoped, release in reverse.
            let classes = ascending(indices);
            for c in &classes {
                ld.acquire(*core, *c, 0, true, "prop", &mut report);
            }
            for c in classes.iter().rev() {
                ld.release(*core, *c, 0);
            }
            prop_assert!(ld.clear_core(*core).is_empty());
        }
        prop_assert!(ld.is_acyclic());
        prop_assert_eq!(report.lockdep, 0);
    }

    /// Acquiring two distinct classes in both orders (scoped outer) is
    /// always detected, whatever unrelated ordered traffic surrounds it.
    #[test]
    fn every_inversion_is_caught(
        a_idx in 0usize..LockClass::COUNT,
        b_idx in 0usize..LockClass::COUNT,
        noise in collection::vec(collection::vec(0usize..LockClass::COUNT, 1..4), 0..20),
    ) {
        if a_idx == b_idx {
            return Ok(());
        }
        let (a, b) = (LockClass::ALL[a_idx], LockClass::ALL[b_idx]);
        let mut ld = Lockdep::new(2);
        let mut report = CheckReport::default();
        for indices in &noise {
            let classes = ascending(indices);
            for c in &classes {
                ld.acquire(0, *c, 0, true, "noise", &mut report);
            }
            for c in classes.iter().rev() {
                ld.release(0, *c, 0);
            }
        }
        prop_assert_eq!(report.lockdep, 0, "ascending noise is ordered");
        ld.acquire(1, a, 0, true, "ab", &mut report);
        ld.acquire(1, b, 0, false, "ab", &mut report);
        ld.release(1, a, 0);
        ld.acquire(1, b, 0, true, "ba", &mut report);
        ld.acquire(1, a, 0, false, "ba", &mut report);
        ld.release(1, b, 0);
        // Whichever direction closed the cycle (possibly through a
        // path the ordered noise created), the inversion is reported.
        prop_assert!(report.lockdep > 0);
        prop_assert!(!ld.is_acyclic());
    }

    /// Writes that all hold one common class never race, regardless of
    /// core interleaving and extra held classes.
    #[test]
    fn common_class_discipline_never_races(
        writes in collection::vec(
            (0u16..6, 0u32..4, collection::vec(0usize..LockClass::COUNT, 0..3)),
            1..80,
        )
    ) {
        let c = Checker::enabled(6, PartitionPolicy::default());
        for (core, slot, extra) in &writes {
            c.op_begin(*core);
            c.on_acquire(*core, LockClass::Slock, 0, false);
            for e in ascending(extra) {
                c.on_acquire(*core, e, 0, false);
            }
            c.on_write(*core, *slot, 1, ObjKind::Tcb);
            c.op_commit(*core);
        }
        let r = c.report().unwrap();
        prop_assert_eq!(r.lockset, 0, "{:?}", r.diagnostics);
    }

    /// A single core can never produce a race report, even with no
    /// locks at all: objects stay in the exclusive state forever.
    #[test]
    fn single_core_never_races(
        writes in collection::vec((0u32..8, any::<bool>()), 1..100)
    ) {
        let c = Checker::enabled(1, PartitionPolicy::all());
        for (slot, locked) in &writes {
            c.op_begin(0);
            if *locked {
                c.on_acquire(0, LockClass::Slock, 0, false);
            }
            c.on_write(0, *slot, 1, ObjKind::SockBuf);
            c.op_commit(0);
        }
        let r = c.report().unwrap();
        prop_assert_eq!(r.lockset, 0);
        prop_assert!(r.is_clean());
    }

    /// Two cores alternately writing the same object under disjoint
    /// locksets always race (the second round's writes find the
    /// candidate set already narrowed to the other core's class), and
    /// the race is reported exactly once.
    #[test]
    fn disjoint_locksets_always_race(
        a_idx in 0usize..LockClass::COUNT,
        b_idx in 0usize..LockClass::COUNT,
        repeats in 2usize..6,
    ) {
        if a_idx == b_idx {
            return Ok(());
        }
        let (a, b) = (LockClass::ALL[a_idx], LockClass::ALL[b_idx]);
        let c = Checker::enabled(2, PartitionPolicy::default());
        for _ in 0..repeats {
            c.op_begin(0);
            c.on_acquire(0, a, 0, false);
            c.on_write(0, 3, 1, ObjKind::Tcb);
            c.op_commit(0);
            c.op_begin(1);
            c.on_acquire(1, b, 0, false);
            c.on_write(1, 3, 1, ObjKind::Tcb);
            c.op_commit(1);
        }
        let r = c.report().unwrap();
        prop_assert_eq!(r.lockset, 1);
        prop_assert_eq!(&r.diagnostics[0].subject, "tcb");
    }
}
