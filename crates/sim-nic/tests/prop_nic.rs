//! Property tests for the NIC steering models.

use proptest::prelude::*;
use sim_net::{FlowTuple, Packet, TcpFlags};
use sim_nic::rss::RssEngine;
use sim_nic::{Nic, NicConfig, QueueId, SteeringMode};
use std::net::Ipv4Addr;

fn arb_flow() -> impl Strategy<Value = FlowTuple> {
    (any::<u32>(), 1u16.., any::<u32>(), 1u16..)
        .prop_map(|(s, sp, d, dp)| FlowTuple::new(Ipv4Addr::from(s), sp, Ipv4Addr::from(d), dp))
}

proptest! {
    /// RSS is per-flow consistent and always in range, for any queue
    /// count.
    #[test]
    fn rss_consistent_and_in_range(flow in arb_flow(), queues in 1u16..=64) {
        let rss = RssEngine::new(queues);
        let q1 = rss.queue_for(&flow);
        let q2 = rss.queue_for(&flow);
        prop_assert_eq!(q1, q2);
        prop_assert!(q1 < queues);
    }

    /// In every steering mode the selected RX queue is valid.
    #[test]
    fn rx_queue_always_valid(flow in arb_flow(), queues in 1u16..=32, mode in 0u8..3) {
        let mode = match mode {
            0 => SteeringMode::Rss,
            1 => SteeringMode::FdirAtr,
            _ => SteeringMode::FdirPerfect,
        };
        let mut nic = Nic::new(NicConfig::new(queues, mode));
        let q = nic.rx_queue(&Packet::new(flow, TcpFlags::SYN));
        prop_assert!(q.0 < queues);
    }

    /// ATR: after the server transmits a SYN for a flow on queue `q`,
    /// the reply direction is steered to `q` (until a collision evicts
    /// it — a fresh table has none).
    #[test]
    fn atr_learns_reply_direction(flow in arb_flow(), queues in 2u16..=32, q in any::<u16>()) {
        let q = QueueId(q % queues);
        let mut nic = Nic::new(NicConfig::new(queues, SteeringMode::FdirAtr));
        nic.tx(&Packet::new(flow, TcpFlags::SYN), q);
        let reply = Packet::new(flow.reversed(), TcpFlags::SYN | TcpFlags::ACK);
        prop_assert_eq!(nic.rx_queue(&reply), q);
    }

    /// Perfect-Filtering: any packet to an ephemeral destination port
    /// whose masked value is a valid queue goes exactly there; others
    /// fall back to a valid RSS queue.
    #[test]
    fn perfect_filter_is_exact(flow in arb_flow(), queues in 1u16..=32) {
        let mut nic = Nic::new(NicConfig::new(queues, SteeringMode::FdirPerfect));
        let q = nic.rx_queue(&Packet::new(flow, TcpFlags::ACK));
        prop_assert!(q.0 < queues);
        let mask = queues.next_power_of_two() - 1;
        if flow.dst_port >= 32_768 && (flow.dst_port & mask) < queues {
            prop_assert_eq!(q.0, flow.dst_port & mask);
        }
    }

    /// XPS maps every core to a valid TX queue.
    #[test]
    fn xps_in_range(core in any::<u16>(), queues in 1u16..=64) {
        let nic = Nic::new(NicConfig::new(queues, SteeringMode::Rss));
        prop_assert!(nic.tx_queue_for_core(sim_core::CoreId(core)).0 < queues);
    }
}
