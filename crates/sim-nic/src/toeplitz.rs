//! The Toeplitz hash used by receive-side scaling.
//!
//! Implements the Microsoft RSS specification's Toeplitz hash over the
//! IPv4/TCP 4-tuple, verified against the specification's published test
//! vectors. Intel 82599 NICs (the paper's testbed) use this function for
//! both RSS and Flow Director signatures.

use sim_net::FlowTuple;

/// The de-facto standard 40-byte RSS secret key (Microsoft's
/// verification-suite key, shipped as the default by many drivers).
pub const RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Computes the Toeplitz hash of `input` under `key`.
///
/// For each set bit of the input (most-significant first), the running
/// result is XORed with the 32-bit window of the key starting at that
/// bit position.
pub fn toeplitz_hash(key: &[u8; 40], input: &[u8]) -> u32 {
    assert!(
        input.len() * 8 + 32 <= key.len() * 8,
        "input too long for key"
    );
    let mut result = 0u32;
    // Current 32-bit key window, advanced one bit per input bit.
    let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    let mut next_key_bit = 32usize;
    for &byte in input {
        for bit in (0..8).rev() {
            if byte >> bit & 1 == 1 {
                result ^= window;
            }
            // Shift the window left by one, pulling in the next key bit.
            let incoming = key[next_key_bit / 8] >> (7 - next_key_bit % 8) & 1;
            window = window << 1 | u32::from(incoming);
            next_key_bit += 1;
        }
    }
    result
}

/// Toeplitz hash of a flow tuple, with the standard RSS input layout
/// (source address, destination address, source port, destination port).
pub fn hash_flow(key: &[u8; 40], flow: &FlowTuple) -> u32 {
    let mut input = [0u8; 12];
    input[0..4].copy_from_slice(&flow.src_ip.octets());
    input[4..8].copy_from_slice(&flow.dst_ip.octets());
    input[8..10].copy_from_slice(&flow.src_port.to_be_bytes());
    input[10..12].copy_from_slice(&flow.dst_port.to_be_bytes());
    toeplitz_hash(key, &input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// One verification vector: (dst ip:port, src ip:port, hash).
    type Vector = ((u8, u8, u8, u8, u16), (u8, u8, u8, u8, u16), u32);

    /// The Microsoft RSS verification-suite vectors for IPv4-with-TCP.
    const VECTORS: [Vector; 5] = [
        (
            (161, 142, 100, 80, 1766),
            (66, 9, 149, 187, 2794),
            0x51cc_c178,
        ),
        (
            (65, 69, 140, 83, 4739),
            (199, 92, 111, 2, 14230),
            0xc626_b0ea,
        ),
        (
            (12, 22, 207, 184, 38024),
            (24, 19, 198, 95, 12898),
            0x5c2b_394a,
        ),
        (
            (209, 142, 163, 6, 2217),
            (38, 27, 205, 30, 48228),
            0xafc7_327f,
        ),
        (
            (202, 188, 127, 2, 1303),
            (153, 39, 163, 191, 44251),
            0x10e8_28a2,
        ),
    ];

    #[test]
    fn matches_microsoft_test_vectors() {
        for (dst, src, expect) in VECTORS {
            let flow = FlowTuple::new(
                Ipv4Addr::new(src.0, src.1, src.2, src.3),
                src.4,
                Ipv4Addr::new(dst.0, dst.1, dst.2, dst.3),
                dst.4,
            );
            assert_eq!(hash_flow(&RSS_KEY, &flow), expect, "vector for flow {flow}");
        }
    }

    #[test]
    fn zero_input_hashes_to_zero() {
        assert_eq!(toeplitz_hash(&RSS_KEY, &[0u8; 12]), 0);
    }

    #[test]
    fn hash_is_linear_in_xor() {
        // Toeplitz is GF(2)-linear: H(a ^ b) == H(a) ^ H(b).
        let a = [
            0x12u8, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11, 0x22, 0x33, 0x44,
        ];
        let b = [
            0xffu8, 0x00, 0xff, 0x00, 0x0f, 0xf0, 0x55, 0xaa, 0x77, 0x88, 0x99, 0xaa,
        ];
        let xored: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert_eq!(
            toeplitz_hash(&RSS_KEY, &xored),
            toeplitz_hash(&RSS_KEY, &a) ^ toeplitz_hash(&RSS_KEY, &b)
        );
    }

    #[test]
    fn direction_sensitivity() {
        // RSS without symmetric-key tricks maps the two directions of a
        // flow to different hashes in general.
        let flow = FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            40_000,
            Ipv4Addr::new(10, 0, 0, 1),
            80,
        );
        assert_ne!(
            hash_flow(&RSS_KEY, &flow),
            hash_flow(&RSS_KEY, &flow.reversed())
        );
    }

    #[test]
    #[should_panic(expected = "input too long")]
    fn over_long_input_rejected() {
        let input = [0u8; 37]; // 37*8 + 32 > 320
        let _ = toeplitz_hash(&RSS_KEY, &input);
    }
}
