//! Receive-side scaling: Toeplitz hash plus indirection table.

use sim_net::FlowTuple;

use crate::toeplitz::{hash_flow, RSS_KEY};

/// Number of entries in the 82599's RSS indirection table.
pub const INDIRECTION_ENTRIES: usize = 128;

/// The RSS engine: hashes a flow and maps it to an RX queue through the
/// indirection table.
///
/// # Example
///
/// ```
/// # use sim_nic::rss::RssEngine;
/// # use sim_net::FlowTuple;
/// # use std::net::Ipv4Addr;
/// let rss = RssEngine::new(8);
/// let flow = FlowTuple::new(
///     Ipv4Addr::new(10, 0, 0, 2), 41000,
///     Ipv4Addr::new(10, 0, 0, 1), 80,
/// );
/// // Per-flow consistency: the same flow always maps to the same queue.
/// assert_eq!(rss.queue_for(&flow), rss.queue_for(&flow));
/// assert!(rss.queue_for(&flow) < 8);
/// ```
#[derive(Debug, Clone)]
pub struct RssEngine {
    key: [u8; 40],
    table: [u16; INDIRECTION_ENTRIES],
    queues: u16,
}

impl RssEngine {
    /// Creates an engine spreading over `queues` RX queues with the
    /// default round-robin indirection table and standard key.
    ///
    /// # Panics
    ///
    /// Panics if `queues == 0`.
    pub fn new(queues: u16) -> Self {
        assert!(queues > 0, "need at least one RX queue");
        let mut table = [0u16; INDIRECTION_ENTRIES];
        for (i, e) in table.iter_mut().enumerate() {
            *e = (i as u16) % queues;
        }
        RssEngine {
            key: RSS_KEY,
            table,
            queues,
        }
    }

    /// Hash of a flow under this engine's key.
    pub fn hash(&self, flow: &FlowTuple) -> u32 {
        hash_flow(&self.key, flow)
    }

    /// The RX queue the indirection table assigns to `flow`.
    pub fn queue_for(&self, flow: &FlowTuple) -> u16 {
        let h = self.hash(flow);
        self.table[(h as usize) & (INDIRECTION_ENTRIES - 1)]
    }

    /// Number of configured queues.
    pub fn queues(&self) -> u16 {
        self.queues
    }

    /// Reprograms one indirection-table entry (as `ethtool -X` would).
    ///
    /// # Panics
    ///
    /// Panics if `entry >= 128` or `queue >= self.queues()`.
    pub fn set_indirection(&mut self, entry: usize, queue: u16) {
        assert!(
            entry < INDIRECTION_ENTRIES,
            "indirection entry out of range"
        );
        assert!(queue < self.queues, "queue out of range");
        self.table[entry] = queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn flow(port: u16) -> FlowTuple {
        FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            Ipv4Addr::new(10, 0, 0, 1),
            80,
        )
    }

    #[test]
    fn spreads_roughly_evenly() {
        let rss = RssEngine::new(8);
        let mut counts = [0u32; 8];
        for port in 32_768..32_768 + 8_000 {
            counts[rss.queue_for(&flow(port)) as usize] += 1;
        }
        let expected = 1_000.0;
        for (q, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "queue {q} got {c} of 8000");
        }
    }

    #[test]
    fn queue_always_in_range() {
        for queues in [1u16, 3, 8, 16, 24] {
            let rss = RssEngine::new(queues);
            for port in (1_024..60_000).step_by(517) {
                assert!(rss.queue_for(&flow(port)) < queues);
            }
        }
    }

    #[test]
    fn indirection_reprogramming_takes_effect() {
        let mut rss = RssEngine::new(4);
        let f = flow(45_000);
        let entry = (rss.hash(&f) as usize) & (INDIRECTION_ENTRIES - 1);
        rss.set_indirection(entry, 2);
        assert_eq!(rss.queue_for(&f), 2);
    }

    #[test]
    #[should_panic(expected = "at least one RX queue")]
    fn zero_queues_rejected() {
        let _ = RssEngine::new(0);
    }
}
