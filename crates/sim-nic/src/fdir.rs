//! Intel Flow Director: ATR signature filters and Perfect-Filtering.

use serde::{Deserialize, Serialize};
use sim_net::{FlowTuple, Packet};

use crate::toeplitz::{hash_flow, RSS_KEY};

/// Configuration of Application Target Routing (ATR) mode.
///
/// ATR watches *transmitted* packets: SYN and FIN segments always
/// install a filter for their flow (pointing at the transmitting
/// queue); other segments install one every `sample_rate` transmissions
/// per queue. Filters live in a direct-mapped signature table — a
/// collision silently overwrites the previous flow, which is the
/// hardware reason ATR gives only best-effort locality (the paper
/// measures 76.5%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtrConfig {
    /// Number of slots in the signature table (power of two).
    pub table_slots: usize,
    /// Install a filter for every Nth non-SYN/FIN transmitted packet.
    pub sample_rate: u32,
}

impl Default for AtrConfig {
    fn default() -> Self {
        AtrConfig {
            // The 82599 dedicates a few tens of KB of packet-buffer RAM
            // to FDir in ATR mode; with signature-filter overhead this
            // yields on the order of 2K usable slots under churn.
            table_slots: 8_192,
            sample_rate: 20,
        }
    }
}

/// Configuration of Perfect-Filtering mode, programmed by Receive Flow
/// Deliver: packets destined to an ephemeral port are steered to
/// `dst_port & port_mask`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfectFilterConfig {
    /// Bit mask applied to the destination port (the paper's
    /// `ROUND_UP_POWER_OF_2(n) - 1`).
    pub port_mask: u16,
    /// Bit offset of the core field (RFD's security shift).
    pub shift: u8,
    /// Lowest port covered by the filters (start of the ephemeral
    /// range); packets below fall through to RSS.
    pub min_port: u16,
}

impl PerfectFilterConfig {
    /// Filters for `queues` RX queues, covering the standard Linux
    /// ephemeral range.
    pub fn for_queues(queues: u16) -> Self {
        Self::for_queues_shifted(queues, 0)
    }

    /// Filters matching the RFD hash with a security bit-shift.
    pub fn for_queues_shifted(queues: u16, shift: u8) -> Self {
        PerfectFilterConfig {
            port_mask: (queues.next_power_of_two()).saturating_sub(1),
            shift,
            min_port: 32_768,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct AtrSlot {
    valid: bool,
    signature: u16,
    queue: u16,
}

/// Statistics kept by the Flow Director model.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FdirStats {
    /// ATR filters installed.
    pub installs: u64,
    /// ATR installs that overwrote a different live flow.
    pub overwrites: u64,
    /// RX lookups that matched a filter.
    pub matches: u64,
    /// RX lookups that missed (fell back to RSS).
    pub misses: u64,
}

/// The Flow Director engine (both modes).
#[derive(Debug)]
pub struct FlowDirector {
    atr: AtrConfig,
    perfect: Option<PerfectFilterConfig>,
    table: Vec<AtrSlot>,
    tx_counters: Vec<u32>,
    stats: FdirStats,
}

impl FlowDirector {
    /// Creates an engine with the given ATR configuration for `queues`
    /// TX/RX queues. Perfect filters are absent until programmed.
    pub fn new(atr: AtrConfig, queues: u16) -> Self {
        assert!(
            atr.table_slots.is_power_of_two(),
            "ATR table size must be a power of two"
        );
        FlowDirector {
            atr,
            perfect: None,
            table: vec![AtrSlot::default(); atr.table_slots],
            tx_counters: vec![0; queues as usize],
            stats: FdirStats::default(),
        }
    }

    /// Programs (or clears) the perfect filters.
    pub fn program_perfect(&mut self, config: Option<PerfectFilterConfig>) {
        self.perfect = config;
    }

    fn slot_and_sig(&self, flow: &FlowTuple) -> (usize, u16) {
        let h = hash_flow(&RSS_KEY, flow);
        let slot = (h as usize) & (self.atr.table_slots - 1);
        let sig = (h >> 16) as u16;
        (slot, sig)
    }

    /// Observes a transmitted packet on `queue`; may install an ATR
    /// filter for the flow's incoming direction.
    pub fn observe_tx(&mut self, pkt: &Packet, queue: u16) {
        let counter = &mut self.tx_counters[queue as usize];
        let forced = pkt.flags.syn() || pkt.flags.fin();
        if !forced {
            *counter += 1;
            if *counter < self.atr.sample_rate {
                return;
            }
            *counter = 0;
        }
        // Key the filter by the direction in which matching packets
        // will be *received*.
        let (slot, sig) = self.slot_and_sig(&pkt.flow.reversed());
        let entry = &mut self.table[slot];
        if entry.valid && (entry.signature != sig || entry.queue != queue) {
            self.stats.overwrites += 1;
        }
        *entry = AtrSlot {
            valid: true,
            signature: sig,
            queue,
        };
        self.stats.installs += 1;
    }

    /// ATR lookup for a received packet. `queues` bounds the answer.
    pub fn atr_lookup(&mut self, pkt: &Packet) -> Option<u16> {
        let (slot, sig) = self.slot_and_sig(&pkt.flow);
        let entry = self.table[slot];
        if entry.valid && entry.signature == sig {
            self.stats.matches += 1;
            Some(entry.queue)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Perfect-filter lookup for a received packet.
    ///
    /// Returns the masked destination port when the packet falls in the
    /// programmed ephemeral range; `queues` guards against masks wider
    /// than the queue count.
    pub fn perfect_lookup(&self, pkt: &Packet, queues: u16) -> Option<u16> {
        let cfg = self.perfect?;
        let dst = pkt.flow.dst_port;
        if dst < cfg.min_port {
            return None;
        }
        let q = (dst >> cfg.shift) & cfg.port_mask;
        (q < queues).then_some(q)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FdirStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::TcpFlags;
    use std::net::Ipv4Addr;

    fn flow(src_port: u16, dst_port: u16) -> FlowTuple {
        FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 9),
            src_port,
            Ipv4Addr::new(10, 0, 0, 1),
            dst_port,
        )
    }

    #[test]
    fn syn_tx_installs_filter_for_reply_direction() {
        let mut fd = FlowDirector::new(AtrConfig::default(), 8);
        let f = flow(40_000, 80);
        fd.observe_tx(&Packet::new(f, TcpFlags::SYN), 5);
        let reply = Packet::new(f.reversed(), TcpFlags::SYN | TcpFlags::ACK);
        assert_eq!(fd.atr_lookup(&reply), Some(5));
        assert_eq!(fd.stats().installs, 1);
        assert_eq!(fd.stats().matches, 1);
    }

    #[test]
    fn data_packets_sampled_at_rate() {
        let cfg = AtrConfig {
            sample_rate: 4,
            ..AtrConfig::default()
        };
        let mut fd = FlowDirector::new(cfg, 2);
        // Three data packets: below the sample rate, nothing installed.
        for i in 0..3 {
            fd.observe_tx(&Packet::new(flow(40_000 + i, 80), TcpFlags::ACK), 0);
        }
        assert_eq!(fd.stats().installs, 0);
        // Fourth hits the rate and installs.
        fd.observe_tx(&Packet::new(flow(40_003, 80), TcpFlags::ACK), 0);
        assert_eq!(fd.stats().installs, 1);
    }

    #[test]
    fn fin_always_installs() {
        let mut fd = FlowDirector::new(AtrConfig::default(), 2);
        fd.observe_tx(
            &Packet::new(flow(40_000, 80), TcpFlags::FIN | TcpFlags::ACK),
            1,
        );
        assert_eq!(fd.stats().installs, 1);
    }

    #[test]
    fn collision_overwrites_previous_flow() {
        let cfg = AtrConfig {
            table_slots: 1, // force every flow into the same slot
            sample_rate: 20,
        };
        let mut fd = FlowDirector::new(cfg, 8);
        let f1 = flow(40_000, 80);
        let f2 = flow(40_001, 80);
        fd.observe_tx(&Packet::new(f1, TcpFlags::SYN), 2);
        fd.observe_tx(&Packet::new(f2, TcpFlags::SYN), 3);
        assert_eq!(fd.stats().overwrites, 1);
        // f1's reply now misses (signature overwritten).
        let miss = fd.atr_lookup(&Packet::new(f1.reversed(), TcpFlags::ACK));
        assert_eq!(miss, None);
        let hit = fd.atr_lookup(&Packet::new(f2.reversed(), TcpFlags::ACK));
        assert_eq!(hit, Some(3));
    }

    #[test]
    fn perfect_filter_masks_ephemeral_ports_only() {
        let mut fd = FlowDirector::new(AtrConfig::default(), 16);
        fd.program_perfect(Some(PerfectFilterConfig::for_queues(16)));
        // Active incoming packet: destination is an RFD-chosen port.
        let active = Packet::new(flow(80, 40_005), TcpFlags::SYN | TcpFlags::ACK);
        assert_eq!(fd.perfect_lookup(&active, 16), Some(40_005 & 15));
        // Passive incoming packet: destination 80 is below the range.
        let passive = Packet::new(flow(40_000, 80), TcpFlags::SYN);
        assert_eq!(fd.perfect_lookup(&passive, 16), None);
    }

    #[test]
    fn perfect_filter_rejects_out_of_range_queue() {
        let mut fd = FlowDirector::new(AtrConfig::default(), 24);
        // 24 queues -> mask 31; masked values 24..=31 are invalid.
        fd.program_perfect(Some(PerfectFilterConfig::for_queues(24)));
        let bad_port = 32_768 + 28; // & 31 == 28 >= 24
        let pkt = Packet::new(flow(80, bad_port), TcpFlags::ACK);
        assert_eq!(fd.perfect_lookup(&pkt, 24), None);
        let good_port = 32_768 + 7;
        let pkt = Packet::new(flow(80, good_port), TcpFlags::ACK);
        assert_eq!(fd.perfect_lookup(&pkt, 24), Some(7));
    }

    #[test]
    fn unprogrammed_perfect_filter_matches_nothing() {
        let fd = FlowDirector::new(AtrConfig::default(), 8);
        let pkt = Packet::new(flow(80, 40_000), TcpFlags::ACK);
        assert_eq!(fd.perfect_lookup(&pkt, 8), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_table_rejected() {
        let cfg = AtrConfig {
            table_slots: 1000,
            sample_rate: 20,
        };
        let _ = FlowDirector::new(cfg, 8);
    }
}
