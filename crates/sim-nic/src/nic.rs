//! The composed NIC: steering mode dispatch, queue→core affinity, XPS,
//! and an XDP-style pre-steering drop stage.

use serde::{Deserialize, Serialize};
use sim_core::CoreId;
use sim_net::Packet;
use std::net::Ipv4Addr;

use crate::batch::BatchConfig;
use crate::fdir::{AtrConfig, FdirStats, FlowDirector, PerfectFilterConfig};
use crate::rss::RssEngine;

/// An RX or TX hardware queue index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueueId(pub u16);

/// Which receive-steering mechanism the NIC uses, mirroring the
/// configurations compared in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SteeringMode {
    /// Pure RSS spreading.
    Rss,
    /// Flow Director in Application Target Routing mode; ATR misses
    /// fall back to RSS.
    FdirAtr,
    /// Flow Director Perfect-Filtering programmed with the RFD port
    /// mask; unmatched packets fall back to RSS.
    FdirPerfect,
}

/// An XDP-style source-prefix blacklist evaluated before steering: a
/// matching packet is discarded at the driver entry point, costing
/// neither a softirq nor a listen-lock acquisition — exactly where an
/// `XDP_DROP` program running at the NIC driver would stand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DropFilter {
    /// Blacklisted `(prefix, prefix_len)` pairs; a packet whose source
    /// address falls in any prefix is dropped.
    pub blacklist: Vec<(Ipv4Addr, u8)>,
}

impl DropFilter {
    /// A filter dropping the given source prefixes.
    #[must_use]
    pub fn blacklisting(blacklist: Vec<(Ipv4Addr, u8)>) -> Self {
        for &(_, len) in &blacklist {
            assert!(len <= 32, "prefix length out of range");
        }
        DropFilter { blacklist }
    }

    /// Whether `src` falls in any blacklisted prefix.
    #[must_use]
    pub fn matches(&self, src: Ipv4Addr) -> bool {
        let addr = u32::from(src);
        self.blacklist.iter().any(|&(prefix, len)| {
            let mask = if len == 0 {
                0
            } else {
                u32::MAX << (32 - u32::from(len))
            };
            (addr & mask) == (u32::from(prefix) & mask)
        })
    }
}

/// NIC configuration.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Number of RX/TX queue pairs (one per core, as the paper
    /// configures).
    pub queues: u16,
    /// Receive steering mode.
    pub steering: SteeringMode,
    /// ATR parameters (used in [`SteeringMode::FdirAtr`]).
    pub atr: AtrConfig,
    /// Bit offset of the RFD core field programmed into the perfect
    /// filters.
    pub rfd_shift: u8,
    /// Interrupt affinity: `irq_affinity[q]` is the core that services
    /// queue `q`'s interrupts. Defaults to the identity mapping.
    pub irq_affinity: Vec<CoreId>,
    /// GSO/GRO batch offload and ECN marking (disabled by default).
    pub batch: BatchConfig,
    /// Pre-steering drop stage; `None` disables it.
    pub early_drop: Option<DropFilter>,
}

impl NicConfig {
    /// A NIC with `queues` queue pairs, identity interrupt affinity and
    /// the given steering mode.
    ///
    /// # Panics
    ///
    /// Panics if `queues == 0`.
    pub fn new(queues: u16, steering: SteeringMode) -> Self {
        assert!(queues > 0, "need at least one queue");
        NicConfig {
            queues,
            steering,
            atr: AtrConfig::default(),
            rfd_shift: 0,
            irq_affinity: (0..queues).map(CoreId).collect(),
            batch: BatchConfig::default(),
            early_drop: None,
        }
    }
}

/// Per-queue receive counters (used to diagnose load imbalance).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NicStats {
    /// Packets received per queue.
    pub rx_per_queue: Vec<u64>,
    /// Packets transmitted per queue.
    pub tx_per_queue: Vec<u64>,
    /// Packets re-steered away from a failed queue.
    pub redirected: u64,
    /// Data segments CE-marked by the ECN queue-threshold model.
    pub ecn_marked: u64,
    /// Packets discarded by the pre-steering drop stage.
    pub early_dropped: u64,
}

/// The NIC model.
#[derive(Debug)]
pub struct Nic {
    config: NicConfig,
    rss: RssEngine,
    fdir: FlowDirector,
    stats: NicStats,
    /// `failed[q]` marks RX queue `q` as dead (fault injection): its
    /// traffic is re-steered to the next surviving queue.
    failed: Vec<bool>,
}

impl Nic {
    /// Creates a NIC from `config`. In [`SteeringMode::FdirPerfect`] the
    /// perfect filters are programmed immediately with the RFD mask for
    /// the configured queue count.
    pub fn new(config: NicConfig) -> Self {
        let rss = RssEngine::new(config.queues);
        let mut fdir = FlowDirector::new(config.atr, config.queues);
        if config.steering == SteeringMode::FdirPerfect {
            fdir.program_perfect(Some(PerfectFilterConfig::for_queues_shifted(
                config.queues,
                config.rfd_shift,
            )));
        }
        let stats = NicStats {
            rx_per_queue: vec![0; config.queues as usize],
            tx_per_queue: vec![0; config.queues as usize],
            redirected: 0,
            ecn_marked: 0,
            early_dropped: 0,
        };
        let failed = vec![false; config.queues as usize];
        Nic {
            config,
            rss,
            fdir,
            stats,
            failed,
        }
    }

    /// Marks RX `queue` as failed: until [`Nic::heal_queue`], packets
    /// steered to it are redirected to the next surviving queue
    /// (deterministically: the first live queue scanning upward from
    /// `queue + 1`, wrapping). With every queue failed, traffic falls
    /// back to queue 0 — the driver would be resetting the device at
    /// that point anyway.
    pub fn fail_queue(&mut self, queue: QueueId) {
        self.failed[queue.0 as usize] = true;
    }

    /// Brings a failed RX queue back into service.
    pub fn heal_queue(&mut self, queue: QueueId) {
        self.failed[queue.0 as usize] = false;
    }

    /// Whether `queue` is currently failed.
    pub fn queue_failed(&self, queue: QueueId) -> bool {
        self.failed[queue.0 as usize]
    }

    fn redirect(&mut self, q: u16) -> u16 {
        if !self.failed[q as usize] {
            return q;
        }
        self.stats.redirected += 1;
        let n = self.config.queues;
        (1..n)
            .map(|k| (q + k) % n)
            .find(|&c| !self.failed[c as usize])
            .unwrap_or(0)
    }

    /// The pre-steering drop stage: returns `true` (and counts the
    /// packet) when the configured [`DropFilter`] blacklists its source.
    /// The driver must consult this *before* [`Nic::rx_queue`] /
    /// [`Nic::rx_core`] so a dropped packet never reaches a softirq or
    /// a listen lock.
    pub fn early_drop(&mut self, pkt: &Packet) -> bool {
        match &self.config.early_drop {
            Some(f) if f.matches(pkt.flow.src_ip) => {
                self.stats.early_dropped += 1;
                true
            }
            _ => false,
        }
    }

    /// Selects the RX queue for an incoming packet, per the steering
    /// mode, and counts it. Failed queues are redirected.
    pub fn rx_queue(&mut self, pkt: &Packet) -> QueueId {
        let q = match self.config.steering {
            SteeringMode::Rss => self.rss.queue_for(&pkt.flow),
            SteeringMode::FdirAtr => self
                .fdir
                .atr_lookup(pkt)
                .filter(|&q| q < self.config.queues)
                .unwrap_or_else(|| self.rss.queue_for(&pkt.flow)),
            SteeringMode::FdirPerfect => self
                .fdir
                .perfect_lookup(pkt, self.config.queues)
                .unwrap_or_else(|| self.rss.queue_for(&pkt.flow)),
        };
        let q = self.redirect(q);
        self.stats.rx_per_queue[q as usize] += 1;
        QueueId(q)
    }

    /// The core that services interrupts for `queue`.
    pub fn irq_core(&self, queue: QueueId) -> CoreId {
        self.config.irq_affinity[queue.0 as usize]
    }

    /// Convenience: RX queue selection followed by interrupt affinity.
    pub fn rx_core(&mut self, pkt: &Packet) -> CoreId {
        let q = self.rx_queue(pkt);
        self.irq_core(q)
    }

    /// XPS (Transmit Packet Steering): the TX queue for a packet sent
    /// from `core` — the paper assigns each TX queue to one core.
    pub fn tx_queue_for_core(&self, core: CoreId) -> QueueId {
        QueueId(core.0 % self.config.queues)
    }

    /// Transmits a packet on `queue`: counts it and lets ATR observe it.
    pub fn tx(&mut self, pkt: &Packet, queue: QueueId) {
        self.stats.tx_per_queue[queue.0 as usize] += 1;
        if self.config.steering == SteeringMode::FdirAtr {
            self.fdir.observe_tx(pkt, queue.0);
        }
    }

    /// Transmits a burst of packets on `queue`, applying the ECN
    /// queue-threshold model: data segments whose position in the burst
    /// crosses `batch.ecn_threshold` leave with CE set. With the
    /// default (disabled) batch config this is exactly a `tx` loop.
    pub fn tx_burst(&mut self, pkts: &mut [Packet], queue: QueueId) {
        let mut data_idx: u16 = 0;
        for pkt in pkts.iter_mut() {
            if pkt.payload_len > 0 {
                if self.config.batch.ecn_mark(data_idx) {
                    pkt.flags = pkt.flags | sim_net::TcpFlags::CE;
                    self.stats.ecn_marked += 1;
                }
                data_idx += 1;
            }
            self.tx(pkt, queue);
        }
    }

    /// The batch-offload configuration.
    pub fn batch(&self) -> BatchConfig {
        self.config.batch
    }

    /// Receive/transmit counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Flow Director counters.
    pub fn fdir_stats(&self) -> FdirStats {
        self.fdir.stats()
    }

    /// The configured steering mode.
    pub fn steering(&self) -> SteeringMode {
        self.config.steering
    }

    /// Number of queue pairs.
    pub fn queues(&self) -> u16 {
        self.config.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::{FlowTuple, TcpFlags};
    use std::net::Ipv4Addr;

    fn flow(src_port: u16, dst_port: u16) -> FlowTuple {
        FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 9),
            src_port,
            Ipv4Addr::new(10, 0, 0, 1),
            dst_port,
        )
    }

    #[test]
    fn rss_mode_is_flow_consistent() {
        let mut nic = Nic::new(NicConfig::new(8, SteeringMode::Rss));
        let p = Packet::new(flow(40_000, 80), TcpFlags::SYN);
        let q1 = nic.rx_queue(&p);
        let q2 = nic.rx_queue(&p);
        assert_eq!(q1, q2);
        assert_eq!(nic.stats().rx_per_queue.iter().sum::<u64>(), 2);
    }

    #[test]
    fn atr_mode_learns_from_tx_and_falls_back_to_rss() {
        let mut nic = Nic::new(NicConfig::new(8, SteeringMode::FdirAtr));
        let f = flow(40_000, 80);
        let reply = Packet::new(f.reversed(), TcpFlags::SYN | TcpFlags::ACK);
        // Before any TX the lookup falls back to RSS.
        let rss_q = nic.rx_queue(&reply);
        // Teach ATR by transmitting a SYN on a different queue.
        let taught = QueueId((rss_q.0 + 1) % 8);
        nic.tx(&Packet::new(f, TcpFlags::SYN), taught);
        assert_eq!(nic.rx_queue(&reply), taught);
    }

    #[test]
    fn perfect_mode_uses_port_mask_for_ephemeral_dst() {
        let mut nic = Nic::new(NicConfig::new(16, SteeringMode::FdirPerfect));
        let active_in = Packet::new(flow(80, 32_768 + 11), TcpFlags::ACK);
        assert_eq!(nic.rx_queue(&active_in), QueueId(11));
        // Passive incoming (dst 80) falls back to RSS but stays in range.
        let passive_in = Packet::new(flow(40_000, 80), TcpFlags::SYN);
        assert!(nic.rx_queue(&passive_in).0 < 16);
    }

    #[test]
    fn irq_affinity_is_identity_by_default() {
        let nic = Nic::new(NicConfig::new(4, SteeringMode::Rss));
        for q in 0..4 {
            assert_eq!(nic.irq_core(QueueId(q)), CoreId(q));
        }
    }

    #[test]
    fn xps_maps_core_to_queue() {
        let nic = Nic::new(NicConfig::new(8, SteeringMode::Rss));
        assert_eq!(nic.tx_queue_for_core(CoreId(3)), QueueId(3));
        // More cores than queues wraps.
        assert_eq!(nic.tx_queue_for_core(CoreId(11)), QueueId(3));
    }

    #[test]
    fn failed_queue_redirects_to_next_survivor() {
        let mut nic = Nic::new(NicConfig::new(4, SteeringMode::Rss));
        let p = Packet::new(flow(40_000, 80), TcpFlags::SYN);
        let home = nic.rx_queue(&p);
        nic.fail_queue(home);
        assert!(nic.queue_failed(home));
        let q = nic.rx_queue(&p);
        assert_eq!(q.0, (home.0 + 1) % 4, "next surviving queue");
        assert_eq!(nic.stats().redirected, 1);
        // With the neighbour also down, traffic skips one further.
        nic.fail_queue(q);
        assert_eq!(nic.rx_queue(&p).0, (home.0 + 2) % 4);
        // Healing restores the original steering decision.
        nic.heal_queue(home);
        nic.heal_queue(q);
        assert_eq!(nic.rx_queue(&p), home);
        assert_eq!(nic.stats().redirected, 2);
    }

    #[test]
    fn all_queues_failed_falls_back_to_queue_zero() {
        let mut nic = Nic::new(NicConfig::new(2, SteeringMode::Rss));
        nic.fail_queue(QueueId(0));
        nic.fail_queue(QueueId(1));
        let p = Packet::new(flow(40_000, 80), TcpFlags::SYN);
        assert_eq!(nic.rx_queue(&p), QueueId(0));
    }

    #[test]
    fn tx_burst_marks_ce_past_threshold() {
        let mut cfg = NicConfig::new(2, SteeringMode::Rss);
        cfg.batch = BatchConfig {
            ecn_threshold: 2,
            ..BatchConfig::default()
        };
        let mut nic = Nic::new(cfg);
        let f = flow(80, 40_000);
        let mut burst: Vec<Packet> = (0..4)
            .map(|i| {
                Packet::new(f, TcpFlags::ACK | TcpFlags::PSH)
                    .with_seq(i * 1_448)
                    .with_payload(1_448)
            })
            .collect();
        // A pure ACK interleaved in the burst does not count as queue depth.
        burst.insert(0, Packet::new(f, TcpFlags::ACK));
        nic.tx_burst(&mut burst, QueueId(0));
        let marked: Vec<bool> = burst.iter().map(|p| p.flags.ce()).collect();
        assert_eq!(marked, vec![false, false, false, true, true]);
        assert_eq!(nic.stats().ecn_marked, 2);
        assert_eq!(nic.stats().tx_per_queue[0], 5);
    }

    #[test]
    fn tx_burst_with_default_batch_is_plain_tx() {
        let mut nic = Nic::new(NicConfig::new(2, SteeringMode::Rss));
        let f = flow(80, 40_000);
        let mut burst: Vec<Packet> = (0..30)
            .map(|i| Packet::new(f, TcpFlags::ACK).with_seq(i).with_payload(100))
            .collect();
        nic.tx_burst(&mut burst, QueueId(1));
        assert!(burst.iter().all(|p| !p.flags.ce()));
        assert_eq!(nic.stats().ecn_marked, 0);
    }

    #[test]
    fn drop_filter_matches_prefixes() {
        let f = DropFilter::blacklisting(vec![
            (Ipv4Addr::new(172, 16, 0, 0), 12),
            (Ipv4Addr::new(192, 0, 2, 7), 32),
        ]);
        assert!(f.matches(Ipv4Addr::new(172, 16, 0, 1)));
        assert!(f.matches(Ipv4Addr::new(172, 31, 255, 255)));
        assert!(!f.matches(Ipv4Addr::new(172, 32, 0, 1)));
        assert!(f.matches(Ipv4Addr::new(192, 0, 2, 7)));
        assert!(!f.matches(Ipv4Addr::new(192, 0, 2, 8)));
        assert!(!DropFilter::default().matches(Ipv4Addr::new(10, 0, 0, 1)));
        // A /0 blacklists everything.
        let all = DropFilter::blacklisting(vec![(Ipv4Addr::new(0, 0, 0, 0), 0)]);
        assert!(all.matches(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn early_drop_discards_before_steering() {
        let mut cfg = NicConfig::new(4, SteeringMode::Rss);
        cfg.early_drop = Some(DropFilter::blacklisting(vec![(
            Ipv4Addr::new(172, 16, 0, 0),
            12,
        )]));
        let mut nic = Nic::new(cfg);
        let hostile = Packet::new(
            FlowTuple::new(
                Ipv4Addr::new(172, 17, 3, 4),
                40_000,
                Ipv4Addr::new(10, 0, 0, 1),
                80,
            ),
            TcpFlags::SYN,
        );
        let legit = Packet::new(flow(40_000, 80), TcpFlags::SYN);
        assert!(nic.early_drop(&hostile));
        assert!(!nic.early_drop(&legit));
        assert_eq!(nic.stats().early_dropped, 1);
        // The dropped packet was never counted against a queue.
        assert_eq!(nic.stats().rx_per_queue.iter().sum::<u64>(), 0);
    }

    #[test]
    fn early_drop_disabled_by_default() {
        let mut nic = Nic::new(NicConfig::new(2, SteeringMode::Rss));
        let hostile = Packet::new(
            FlowTuple::new(
                Ipv4Addr::new(172, 17, 3, 4),
                40_000,
                Ipv4Addr::new(10, 0, 0, 1),
                80,
            ),
            TcpFlags::SYN,
        );
        assert!(!nic.early_drop(&hostile));
        assert_eq!(nic.stats().early_dropped, 0);
    }

    #[test]
    fn tx_does_not_teach_atr_in_rss_mode() {
        let mut nic = Nic::new(NicConfig::new(8, SteeringMode::Rss));
        let f = flow(40_000, 80);
        nic.tx(&Packet::new(f, TcpFlags::SYN), QueueId(2));
        assert_eq!(nic.fdir_stats().installs, 0);
    }
}
