//! GSO/GRO-style batch offload and ECN queue-threshold marking.
//!
//! Real NICs amortize per-segment costs when the stack hands them a
//! super-segment (GSO: one descriptor, the hardware segments) and when
//! the driver coalesces an in-order train of received segments into one
//! super-segment before the stack sees it (GRO). The model keeps the
//! per-segment *wire* packets — steering, loss, and peer logic all see
//! individual MSS segments — but charges only a fraction of the full
//! per-segment CPU cost for the tail of each burst.
//!
//! The same config models DCTCP-style ECN marking: a TX burst longer
//! than `ecn_threshold` segments is the discrete-event analogue of a
//! queue exceeding the marking threshold K (the wire drains between
//! events, so the instantaneous queue depth *is* the burst length).
//! Segments past the threshold leave with CE set.

use serde::{Deserialize, Serialize};
use sim_core::Cycles;

/// Batch-offload parameters. The default configuration disables every
/// mechanism (`gso_burst`/`gro_burst` of 1, `ecn_threshold` of 0), so
/// a NIC built without explicit batch settings behaves exactly like the
/// pre-offload model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Maximum segments per GSO burst on the TX path. The first segment
    /// of each burst pays the full per-segment cost; the rest pay
    /// `amortized_pct`.
    pub gso_burst: u16,
    /// Maximum segments per GRO coalescing train on the RX path,
    /// amortized the same way.
    pub gro_burst: u16,
    /// Percentage (0–100) of the full per-segment cost charged for
    /// amortized segments.
    pub amortized_pct: u8,
    /// ECN marking threshold in segments: within one TX burst, segments
    /// at index >= threshold are CE-marked. 0 disables marking.
    pub ecn_threshold: u16,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            gso_burst: 1,
            gro_burst: 1,
            amortized_pct: 100,
            ecn_threshold: 0,
        }
    }
}

impl BatchConfig {
    /// An enabled offload configuration with typical values: 16-segment
    /// GSO/GRO bursts, amortized segments at 25% of full cost, and a
    /// DCTCP-ish marking threshold of 20 segments.
    pub fn offload() -> Self {
        BatchConfig {
            gso_burst: 16,
            gro_burst: 16,
            amortized_pct: 25,
            ecn_threshold: 20,
        }
    }

    /// Cost of the `idx`-th segment (0-based) of a segmentation burst,
    /// given the full per-segment cost. Index 0 of every `gso_burst`-
    /// sized window pays full price, the rest are amortized.
    pub fn gso_cost(&self, idx: u16, full: Cycles) -> Cycles {
        self.burst_cost(idx, self.gso_burst, full)
    }

    /// Cost of the `idx`-th segment (0-based) of a coalescing train.
    pub fn gro_cost(&self, idx: u16, full: Cycles) -> Cycles {
        self.burst_cost(idx, self.gro_burst, full)
    }

    fn burst_cost(&self, idx: u16, burst: u16, full: Cycles) -> Cycles {
        let burst = burst.max(1);
        if idx.is_multiple_of(burst) {
            full
        } else {
            full * Cycles::from(self.amortized_pct) / 100
        }
    }

    /// Whether the segment at `idx` (0-based) in a TX burst crosses the
    /// modeled queue threshold and must be CE-marked.
    pub fn ecn_mark(&self, idx: u16) -> bool {
        self.ecn_threshold > 0 && idx >= self.ecn_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_a_no_op() {
        let b = BatchConfig::default();
        for idx in 0..8 {
            assert_eq!(b.gso_cost(idx, 2_500), 2_500);
            assert_eq!(b.gro_cost(idx, 3_000), 3_000);
            assert!(!b.ecn_mark(idx));
        }
    }

    #[test]
    fn amortization_charges_full_price_once_per_burst() {
        let b = BatchConfig {
            gso_burst: 4,
            gro_burst: 4,
            amortized_pct: 25,
            ecn_threshold: 0,
        };
        let costs: Vec<_> = (0..6).map(|i| b.gso_cost(i, 1_000)).collect();
        assert_eq!(costs, vec![1_000, 250, 250, 250, 1_000, 250]);
        assert_eq!(b.gro_cost(1, 1_000), 250);
    }

    #[test]
    fn ecn_marks_past_threshold_only() {
        let b = BatchConfig {
            ecn_threshold: 3,
            ..BatchConfig::default()
        };
        assert!(!b.ecn_mark(0));
        assert!(!b.ecn_mark(2));
        assert!(b.ecn_mark(3));
        assert!(b.ecn_mark(9));
    }
}
