//! Lane-boundary flow routing for the parallel simulation engine.
//!
//! When the simulated machine is partitioned into lanes (contiguous
//! blocks of cores, each with its own NIC replica), client→server
//! packets must be dispatched to the lane whose NIC would have
//! received them. The router is a pre-steering ECMP stage: it hashes
//! the flow tuple with the standard Toeplitz key and spreads flows
//! uniformly over lanes, exactly as a top-of-rack switch spreads flows
//! over the ports of a LAG. It is a pure function of the flow, so
//! serial and threaded lane executors route identically — which the
//! bit-identical-digest tests depend on.

use sim_net::FlowTuple;

use crate::toeplitz::{hash_flow, RSS_KEY};

/// Deterministic flow → lane dispatcher.
#[derive(Debug, Clone)]
pub struct LaneRouter {
    lanes: u16,
}

impl LaneRouter {
    /// A router spreading flows over `lanes` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: u16) -> LaneRouter {
        assert!(lanes > 0, "need at least one lane");
        LaneRouter { lanes }
    }

    /// Number of lanes this router spreads over.
    pub fn lanes(&self) -> u16 {
        self.lanes
    }

    /// The lane owning `flow`'s server-side state. All packets of one
    /// flow (client→server orientation) map to the same lane.
    pub fn lane_for_flow(&self, flow: &FlowTuple) -> u16 {
        (hash_flow(&RSS_KEY, flow) % u32::from(self.lanes)) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn flow(n: u32) -> FlowTuple {
        FlowTuple::new(
            Ipv4Addr::new(10, (1 + n / 250) as u8, (n % 250) as u8, 2),
            40_000 + (n % 20_000) as u16,
            Ipv4Addr::new(10, 0, 0, 1),
            80,
        )
    }

    #[test]
    fn per_flow_consistency() {
        let r = LaneRouter::new(3);
        for n in 0..64 {
            assert_eq!(r.lane_for_flow(&flow(n)), r.lane_for_flow(&flow(n)));
            assert!(r.lane_for_flow(&flow(n)) < 3);
        }
    }

    #[test]
    fn spreads_over_all_lanes() {
        let r = LaneRouter::new(4);
        let mut seen = [0u32; 4];
        for n in 0..4_000 {
            seen[usize::from(r.lane_for_flow(&flow(n)))] += 1;
        }
        for (lane, &count) in seen.iter().enumerate() {
            assert!(count > 500, "lane {lane} starved: {count}/4000");
        }
    }

    #[test]
    fn single_lane_routes_everything_home() {
        let r = LaneRouter::new(1);
        for n in 0..32 {
            assert_eq!(r.lane_for_flow(&flow(n)), 0);
        }
    }
}
