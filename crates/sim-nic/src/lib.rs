//! NIC model: receive-side steering exactly as the Intel 82599 does it.
//!
//! The paper's connection-locality design (Section 3.3) interacts with
//! three NIC packet-delivery mechanisms, all modelled here:
//!
//! * **RSS** ([`rss`]) — the Toeplitz hash over the 4-tuple selects an
//!   RX queue through a 128-entry indirection table. Per-flow
//!   consistent, but blind to where the application runs.
//! * **Flow Director ATR** ([`fdir`]) — the NIC samples *transmitted*
//!   packets (SYN and FIN always, every Nth data packet otherwise) and
//!   installs a signature filter mapping the flow to the transmitting
//!   queue. The signature table is direct-mapped and finite, so
//!   collisions evict older flows — which is why the paper measures only
//!   76.5% locality from ATR.
//! * **Flow Director Perfect-Filtering** ([`fdir`]) — match rules
//!   programmed by software. Fastsocket programs the Receive Flow
//!   Deliver hash `queue = dst_port & (roundup_pow2(n)-1)` for ephemeral
//!   destination ports, achieving 100% locality for active connections.
//!
//! [`nic::Nic`] composes these with per-queue interrupt affinity and
//! XPS-style TX queue selection.
//!
//! # Example
//!
//! ```
//! use sim_nic::{Nic, NicConfig, SteeringMode, QueueId};
//! use sim_net::{FlowTuple, Packet, TcpFlags};
//! use std::net::Ipv4Addr;
//!
//! let mut nic = Nic::new(NicConfig::new(8, SteeringMode::FdirAtr));
//! let flow = FlowTuple::new(
//!     Ipv4Addr::new(10, 0, 0, 9), 40000,
//!     Ipv4Addr::new(10, 0, 0, 1), 80,
//! );
//! // The server transmits a SYN from queue 3: ATR learns the flow.
//! nic.tx(&Packet::new(flow, TcpFlags::SYN), QueueId(3));
//! // The peer's reply is steered back to queue 3.
//! let rx = nic.rx_queue(&Packet::new(flow.reversed(), TcpFlags::SYN | TcpFlags::ACK));
//! assert_eq!(rx, QueueId(3));
//! ```

pub mod batch;
pub mod fdir;
pub mod lane;
pub mod nic;
pub mod rss;
pub mod toeplitz;

pub use batch::BatchConfig;
pub use fdir::{AtrConfig, FlowDirector, PerfectFilterConfig};
pub use lane::LaneRouter;
pub use nic::{DropFilter, Nic, NicConfig, NicStats, QueueId, SteeringMode};
pub use rss::RssEngine;
pub use toeplitz::{toeplitz_hash, RSS_KEY};
