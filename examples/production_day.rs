//! A production day: the Figure 3 scenario under *open-loop* load.
//!
//! Two 8-core HAProxy servers face the same diurnal arrival schedule;
//! one runs the stock kernel, one runs Fastsocket. Unlike the original
//! closed-loop version of this example, the traffic here comes from
//! `sim-load`: users show up on a Poisson schedule shaped by the
//! default diurnal curve and do not politely slow down when a server
//! falls behind — so besides the utilization whiskers, the open loop
//! exposes what the paper's users would actually feel: connection-setup
//! p99 measured from the *scheduled* arrival (queue wait included).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example production_day [peak_cps]
//! ```

use fastsocket::{
    AppSpec, KernelSpec, OpenLoopConfig, RateProfile, RunReport, SimConfig, Simulation,
    DEFAULT_DIURNAL,
};
use sim_core::secs_to_cycles;

fn bar(frac: f64) -> String {
    let width = 30usize;
    let filled = ((frac * width as f64).round() as usize).min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// One simulated hour: an open-loop Poisson cell at that hour's rate.
fn hour_cell(kernel: KernelSpec, rate: f64) -> RunReport {
    let cfg = SimConfig::new(kernel, AppSpec::proxy(), 8)
        .warmup_secs(0.02)
        .measure_secs(0.1)
        .trace(true)
        .open_loop(OpenLoopConfig::poisson(rate).population(4_000));
    Simulation::new(cfg).run()
}

fn max_util(r: &RunReport) -> f64 {
    r.core_utilization.iter().cloned().fold(0.0, f64::max)
}

fn main() {
    let peak: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42_000.0);
    println!(
        "running both servers through a 24-hour open-loop diurnal schedule \
         (peak {peak:.0} cps)...\n"
    );

    println!(
        "hour  base kernel (max-core util)            p99µs   \
         fastsocket (max-core util)             p99µs"
    );
    let mut peak_hour: Option<(f64, f64)> = None;
    for (hour, frac) in DEFAULT_DIURNAL.iter().enumerate() {
        let rate = peak * frac;
        let b = hour_cell(KernelSpec::BaseLinux, rate);
        let f = hour_cell(KernelSpec::Fastsocket, rate);
        let (bu, fu) = (max_util(&b), max_util(&f));
        println!(
            "{:>4}  {} {:>5.1}%  {:>6.0}   {} {:>5.1}%  {:>6.0}",
            hour,
            bar(bu),
            100.0 * bu,
            b.latency.as_ref().map_or(0.0, |l| l.setup.p99_us),
            bar(fu),
            100.0 * fu,
            f.latency.as_ref().map_or(0.0, |l| l.setup.p99_us),
        );
        if peak_hour.is_none_or(|(prev, _)| bu > prev) {
            peak_hour = Some((bu, fu));
        }
    }
    if let Some((bu, fu)) = peak_hour {
        // Effective capacity is SLA-limited by the hottest core: a
        // server can grow traffic until that core saturates, so
        // headroom scales as 1/max-util (the Figure 3 formula).
        println!(
            "\neffective capacity improvement from deploying Fastsocket: {:.1}% \
             (closed-loop Figure 3 measures 61.4%; paper: 53.5%)",
            100.0 * (bu / fu - 1.0)
        );
    }

    // The same day as one continuous run, exercising the diurnal rate
    // profile itself (a compressed 2.4 s "day", 0.1 s per hour).
    let day = secs_to_cycles(2.4);
    let whole_day = |kernel: KernelSpec| {
        let cfg = SimConfig::new(kernel, AppSpec::proxy(), 8)
            .warmup_secs(0.0)
            .measure_secs(2.4)
            .trace(true)
            .open_loop(
                OpenLoopConfig::poisson(peak)
                    .profile(RateProfile::diurnal(day))
                    .population(4_000),
            );
        Simulation::new(cfg).run()
    };
    println!("\nwhole-day continuous run (diurnal profile, one compressed day):");
    for kernel in [KernelSpec::BaseLinux, KernelSpec::Fastsocket] {
        let r = whole_day(kernel.clone());
        let load = r.load.as_ref().expect("open loop reports load");
        println!(
            "  {:<12} offered {:>7}  completed {:>7}  abandoned {:>4}  \
             peak backlog {:>4}  day p99 {:>6.0}µs",
            kernel.label(),
            load.offered,
            load.completed_sessions,
            load.abandoned_wait + load.abandoned_connect,
            load.peak_backlog,
            r.latency.as_ref().map_or(0.0, |l| l.setup.p99_us),
        );
    }
}
