//! A production day: the Figure 3 scenario in miniature.
//!
//! Two 8-core HAProxy servers handle the same diurnal traffic; one runs
//! the stock kernel, one runs Fastsocket. The stock server's shared
//! accept queue concentrates load on some cores (wide whiskers); the
//! Fastsocket server's per-core zones stay balanced, and its hottest
//! core — which determines the SLA-limited effective capacity — runs
//! much cooler.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example production_day [peak_cps]
//! ```

use fastsocket::experiments::fig3;

fn bar(frac: f64) -> String {
    let width = 30usize;
    let filled = ((frac * width as f64).round() as usize).min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

fn main() {
    let peak: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42_000.0);
    println!("running both servers through a 24-hour diurnal load (peak {peak:.0} cps)...\n");
    let fig = fig3::run(8, peak, 0.1);

    println!("hour  base kernel (max-core util)           fastsocket (max-core util)");
    for (b, f) in fig.base.hours.iter().zip(&fig.fastsocket.hours) {
        println!(
            "{:>4}  {} {:>5.1}%   {} {:>5.1}%",
            b.hour,
            bar(b.max),
            100.0 * b.max,
            bar(f.max),
            100.0 * f.max
        );
    }
    println!(
        "\neffective capacity improvement from deploying Fastsocket: {:.1}% \
         (paper: 53.5%)",
        100.0 * fig.capacity_improvement()
    );
    println!(
        "average CPU-efficiency gain at the peak hour: {:.1}% (paper: 31.5%)",
        100.0 * fig.avg_utilization_reduction()
    );
}
