//! A flash crowd: bursty MMPP arrivals against all three kernels.
//!
//! Traffic alternates between a calm phase and a burst phase (a
//! Markov-modulated Poisson process), with the burst rate chosen above
//! the stock kernels' 8-core SLO capacity but below Fastsocket's. A
//! closed-loop client pool structurally cannot express this scenario —
//! its offered load collapses exactly when the server saturates. Here
//! the arrivals keep coming: the slower kernels push users into the
//! admission backlog, impatient users abandon, and connection-setup
//! p99 (measured from the *scheduled* arrival) blows out — while
//! Fastsocket's per-core tables ride the burst.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example flash_crowd [burst_cps]
//! ```

use fastsocket::{AppSpec, KernelSpec, MmppPhase, OpenLoopConfig, SimConfig, Simulation};

fn main() {
    let burst: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(230_000.0);
    let calm = 40_000.0;
    println!(
        "flash crowd on 8 cores: calm {calm:.0} cps, bursts of {burst:.0} cps, \
         impatient users (50 ms patience)...\n"
    );

    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>9} {:>12} {:>10}",
        "kernel", "offered", "completed", "abandoned", "backlog", "setup p99", "goodput"
    );
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        let cfg = SimConfig::new(kernel.clone(), AppSpec::web(), 8)
            .warmup_secs(0.02)
            .measure_secs(0.4)
            .trace(true)
            .open_loop(
                OpenLoopConfig::mmpp(vec![
                    MmppPhase {
                        rate_cps: calm,
                        mean_dwell_secs: 0.05,
                    },
                    MmppPhase {
                        rate_cps: burst,
                        mean_dwell_secs: 0.03,
                    },
                ])
                .population(1_024)
                .patience_secs(0.05),
            );
        let r = Simulation::new(cfg).run();
        let load = r.load.as_ref().expect("open loop reports load");
        println!(
            "{:<14} {:>8} {:>10} {:>10} {:>9} {:>10.0}µs {:>9.1}%",
            kernel.label(),
            load.offered,
            load.completed_sessions,
            load.abandoned_wait + load.abandoned_connect,
            load.peak_backlog,
            r.latency.as_ref().map_or(0.0, |l| l.setup.p99_us),
            100.0 * load.completed_sessions as f64 / load.offered.max(1) as f64,
        );
    }
    println!(
        "\nSame seed, same arrival schedule for every kernel — only the stack \
         under test changes."
    );
}
