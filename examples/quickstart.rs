//! Quickstart: simulate an 8-core Fastsocket web server for one second
//! and print the headline metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};

fn main() {
    // An 8-core server running the Fastsocket kernel and an nginx-like
    // web application, loaded by http_load-style clients (500
    // connections per core, short-lived HTTP exchanges).
    let config = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 8)
        .warmup_secs(0.1)
        .measure_secs(0.5);

    println!("simulating 0.6s of an 8-core Fastsocket web server...");
    let report = Simulation::new(config).run();

    println!("\n== results ==");
    println!(
        "throughput        : {:.0} connections/sec",
        report.throughput_cps
    );
    println!("connections served: {}", report.completed);
    println!(
        "core utilization  : avg {:.1}%  (min {:.1}%, max {:.1}%)",
        100.0 * report.avg_utilization(),
        100.0 * report.utilization_spread().0,
        100.0 * report.utilization_spread().1
    );
    println!("L3 miss rate      : {:.1}%", 100.0 * report.l3_miss_rate);
    println!(
        "lock spin share   : {:.2}% of cycles",
        100.0 * report.lock_spin_share()
    );

    println!("\nlockstat (contentions in the measured window):");
    for lock in &report.locks {
        if lock.acquisitions > 0 {
            println!(
                "  {:<12} {:>10} acquisitions, {:>8} contended",
                lock.name, lock.acquisitions, lock.contentions
            );
        }
    }
    println!(
        "\nWith the full Fastsocket design (Local Listen Table, Local \
         Established Table,\nReceive Flow Deliver, Fastsocket-aware VFS) \
         every connection is handled on a\nsingle core, so the shared-lock \
         contention counts above are zero."
    );
}
