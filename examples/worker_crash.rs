//! Robustness: why the Local Listen Table keeps the global listen
//! socket around (Figure 2's slow path).
//!
//! A naive per-core partition of the listen table breaks TCP: when a
//! worker dies, SYNs delivered to its core match nothing and get RST —
//! even though other workers could serve them (§2.1). Fastsocket falls
//! back to the global listen socket, and `accept()` checks the global
//! queue first so slow-path connections cannot starve.
//!
//! This example drives the TCP stack directly (no full simulation) to
//! show both paths.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example worker_crash
//! ```

use sim_core::{CoreId, SimRng};
use sim_mem::{CacheCosts, CacheModel};
use sim_net::{FlowTuple, Packet, TcpFlags};
use sim_os::process::Pid;
use sim_os::KernelCtx;
use sim_sync::{LockCosts, LockTable};
use std::net::Ipv4Addr;
use tcp_stack::stack::{OsServices, StackConfig, TcpStack};
use tcp_stack::AcceptSource;

const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn main() {
    let config = StackConfig::fastsocket(4);
    let mut ctx = KernelCtx::new(
        4,
        LockTable::new(LockCosts::default()),
        CacheModel::new(CacheCosts::default()),
        SimRng::seed(1),
    );
    let mut os = OsServices::new(&mut ctx, &config);
    let mut stack = TcpStack::new(&mut ctx, config);

    // Server setup: global listen socket + one local_listen() per core.
    let mut op = ctx.begin(CoreId(0), 0);
    stack.listen(&mut ctx, &mut op, 80, 1024, CoreId(0));
    for c in 0..4u16 {
        stack.local_listen(&mut ctx, &mut op, 80, 1024, Pid(c.into()), CoreId(c));
    }
    op.commit(&mut ctx.cpu);
    println!("server listening on :80 with 4 workers (local listen tables)");

    // The worker on core 1 crashes: the kernel destroys its copied
    // listen socket.
    stack
        .listen_table_mut()
        .destroy_process_socket(80, CoreId(1));
    println!("worker on core 1 crashed; its local listen socket is gone\n");

    // A SYN is RSS-delivered to core 1 anyway.
    let flow = FlowTuple::new(CLIENT, 45_000, SERVER, 80);
    let syn = Packet::new(flow, TcpFlags::SYN).with_seq(1_000);
    let mut op = ctx.begin(CoreId(1), 0);
    let out = stack.net_rx(&mut ctx, &mut os, &mut op, &syn, false);
    op.commit(&mut ctx.cpu);

    let reply = out.replies.first().expect("a reply");
    println!(
        "SYN on core 1 -> {} (a naive local-only partition would send RST here)",
        if reply.flags.rst() { "RST" } else { "SYN-ACK" }
    );
    assert!(
        reply.flags.syn() && reply.flags.ack(),
        "robustness slow path"
    );

    // Complete the handshake; the connection lands in the GLOBAL
    // accept queue.
    let ack = Packet::new(flow, TcpFlags::ACK)
        .with_seq(1_001)
        .with_ack(reply.seq.wrapping_add(1));
    let mut op = ctx.begin(CoreId(1), 0);
    stack.net_rx(&mut ctx, &mut os, &mut op, &ack, false);
    op.commit(&mut ctx.cpu);

    // Any surviving worker can accept it; the global queue is checked
    // before the local one (Figure 2, step 7), so it cannot starve.
    let mut op = ctx.begin(CoreId(2), 0);
    let (sock, source) = stack
        .accept(&mut ctx, &mut os, &mut op, 80, CoreId(2), Pid(2))
        .expect("connection must be acceptable after the crash");
    op.commit(&mut ctx.cpu);
    println!(
        "worker on core 2 accepted the connection via the {} queue (socket {:?})",
        match source {
            AcceptSource::Global => "GLOBAL (slow path)",
            AcceptSource::Local => "local",
        },
        sock
    );
    assert_eq!(source, AcceptSource::Global);
    println!("\nrobustness preserved: no RST, the connection survived the crash");
}
