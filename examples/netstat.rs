//! Compatibility demo: the `/proc/net/tcp` view that §3.4's
//! Fastsocket-aware VFS deliberately preserves, so `netstat` and `lsof`
//! keep working.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example netstat
//! ```

use sim_core::{usecs_to_cycles, CoreId, SimRng};
use sim_mem::{CacheCosts, CacheModel};
use sim_net::{FlowTuple, Packet, TcpFlags};
use sim_os::process::Pid;
use sim_os::KernelCtx;
use sim_sync::{LockCosts, LockTable};
use sim_trace::Tracer;
use std::net::Ipv4Addr;
use tcp_stack::stack::{OsServices, StackConfig, TcpStack};

fn main() {
    let config = StackConfig::fastsocket(2);
    let mut ctx = KernelCtx::new(
        2,
        LockTable::new(LockCosts::default()),
        CacheModel::new(CacheCosts::default()),
        SimRng::seed(2),
    );
    // Trace everything the stack does below, so the same run also
    // demonstrates the latency histogram and cycle attribution.
    let tracer = Tracer::enabled(2, 4096);
    ctx.set_tracer(tracer.clone());
    let mut os = OsServices::new(&mut ctx, &config);
    let mut stack = TcpStack::new(&mut ctx, config);

    // Listen on :80 with two Fastsocket workers, then establish a few
    // connections in different states.
    let mut op = ctx.begin(CoreId(0), 0);
    stack.listen(&mut ctx, &mut op, 80, 128, CoreId(0));
    for c in 0..2u16 {
        stack.local_listen(&mut ctx, &mut op, 80, 128, Pid(c.into()), CoreId(c));
    }
    op.commit(&mut ctx.cpu);

    for (i, take_to) in [("full", 3), ("handshake", 2), ("syn-only", 1)] {
        let _ = i;
        let flow = FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            40_000 + take_to,
            Ipv4Addr::new(10, 0, 0, 1),
            80,
        );
        let mut op = ctx.begin(CoreId(0), 0);
        let out = stack.net_rx(
            &mut ctx,
            &mut os,
            &mut op,
            &Packet::new(flow, TcpFlags::SYN).with_seq(100),
            false,
        );
        if take_to >= 2 {
            let synack = out.replies[0];
            stack.net_rx(
                &mut ctx,
                &mut os,
                &mut op,
                &Packet::new(flow, TcpFlags::ACK)
                    .with_seq(101)
                    .with_ack(synack.seq.wrapping_add(1)),
                false,
            );
        }
        op.commit(&mut ctx.cpu);
    }

    println!("Even under the Fastsocket-aware VFS fast path, /proc keeps working:\n");
    print!("{}", stack.proc_net_tcp());
    println!("\nsummary (ss -s style):");
    for (state, n) in stack.socket_summary() {
        println!("  {state:<12} {n}");
    }

    // The tracer watched every handshake above; print what it measured.
    let per_usec = usecs_to_cycles(1.0) as f64;
    println!("\nconnection-setup latency histogram (SYN -> ESTABLISHED):");
    let buckets = tracer.setup_buckets();
    let peak = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1);
    for (upper_cycles, count) in &buckets {
        let bar = "#".repeat((count * 40 / peak) as usize);
        println!(
            "  <= {:>8.2} us  {count:>4}  {bar}",
            *upper_cycles as f64 / per_usec
        );
    }
    if let Some(latency) = tracer.latency(per_usec) {
        let s = latency.setup;
        println!(
            "  {} setups: p50 {:.2} us, p99 {:.2} us, max {:.2} us",
            s.count, s.p50_us, s.p99_us, s.max_us
        );
    }
    println!("\ncycle attribution (flamegraph .folded):");
    print!("{}", tracer.folded());
}
