//! Active-connection locality on a proxy: the workload that motivates
//! Receive Flow Deliver.
//!
//! An HAProxy-like proxy accepts client connections and opens *active*
//! connections to backends. The backend's reply packets land wherever
//! the NIC's receive hash sends them — almost never on the core whose
//! worker owns the connection — unless the kernel encodes the core into
//! the source port (RFD) and steers on receive.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example proxy_locality
//! ```

use fastsocket::experiments::fig5::NicSetup;
use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};

fn main() {
    let cores = 16;
    println!("HAProxy on {cores} cores — locality of active-connection packets\n");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "NIC setup", "conn/sec", "NIC-local", "steered", "L3 miss"
    );
    for setup in NicSetup::ALL {
        let cfg = SimConfig::new(
            KernelSpec::Custom(Box::new(setup.kernel(cores))),
            AppSpec::proxy(),
            cores,
        )
        .steering(setup.steering())
        .warmup_secs(0.1)
        .measure_secs(0.2);
        let r = Simulation::new(cfg).run();
        println!(
            "{:<18} {:>12.0} {:>11.1}% {:>12} {:>11.1}%",
            setup.label(),
            r.throughput_cps,
            100.0 * r.local_packet_proportion,
            r.stack.steered_packets,
            100.0 * r.l3_miss_rate,
        );
    }
    println!(
        "\n`NIC-local` is the fraction of active-connection packets the NIC \
         delivered to\nthe owning core (before RFD's software fix-up). RSS is \
         blind (~1/cores); Flow\nDirector ATR learns flows from transmitted \
         SYN/FIN but its finite signature\ntable collides; Perfect-Filtering \
         programmed with the RFD port mask is exact."
    );
}
