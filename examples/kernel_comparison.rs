//! Compare the three kernels on the same web workload — a miniature
//! Figure 4(a).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example kernel_comparison [cores...]
//! ```

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};

fn main() {
    let cores_list: Vec<u16> = {
        let args: Vec<u16> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1, 8, 16, 24]
        } else {
            args
        }
    };

    println!(
        "{:<14} {:>6} {:>12} {:>10} {:>10} {:>12}",
        "kernel", "cores", "conn/sec", "speedup", "spin%", "listen walk"
    );
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        let mut single = None;
        for &cores in &cores_list {
            let cfg = SimConfig::new(kernel.clone(), AppSpec::web(), cores)
                .warmup_secs(0.1)
                .measure_secs(0.2);
            let r = Simulation::new(cfg).run();
            if cores == cores_list[0] {
                single = Some(r.throughput_cps / f64::from(cores));
            }
            let speedup = single.map_or(0.0, |s| r.throughput_cps / s);
            println!(
                "{:<14} {:>6} {:>12.0} {:>9.1}x {:>9.1}% {:>12.1}",
                r.kernel,
                cores,
                r.throughput_cps,
                speedup,
                100.0 * r.lock_spin_share(),
                r.avg_listen_walk,
            );
        }
    }
    println!(
        "\nNote how the base kernel flattens once its global listen socket and \
         dcache_lock\nsaturate, Linux 3.13 pays an O(cores) listener walk \
         (`listen walk` column), and\nFastsocket scales near-linearly."
    );
}
