//! Workspace root: re-exports the fastsocket public API for examples and tests.
pub use fastsocket::*;
