//! Offline in-tree replacement for the subset of `serde` this workspace
//! uses: the [`Serialize`] / [`Deserialize`] traits, their derive macros
//! (re-exported from the in-tree `serde_derive`), and a self-describing
//! [`Value`] tree that `serde_json` renders and parses.
//!
//! Unlike upstream serde's visitor architecture, this implementation is a
//! value-tree model: `Serialize` produces a [`Value`], `Deserialize`
//! consumes one. The only data format in the workspace is JSON, no type
//! here uses `#[serde(...)]` attributes, and the derived encodings match
//! upstream serde's defaults (structs as objects, newtype structs as
//! their inner value, fieldless enum variants as strings), so documents
//! produced by this crate are byte-compatible with upstream for the
//! types the workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of JSON-compatible data.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers (kept exact up to `u64::MAX`).
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion order (serde's struct field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The contents of a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric contents as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric contents as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// An error noting a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, found {}", got.type_name()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by generated derive code ----

/// Extracts and deserializes one named field of an object.
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    match v.get(key) {
        Some(f) => T::from_value(f).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => match v {
            Value::Object(_) => Err(Error(format!("missing field `{key}`"))),
            other => Err(Error::expected("object", other)),
        },
    }
}

/// Like [`de_field`], but a missing key falls back to `T::default()`.
/// Generated for fields marked
/// `#[serde(default, skip_serializing_if = "Option::is_none")]`, so
/// documents written before such a field existed still deserialize.
pub fn de_field_or_default<T: Deserialize + Default>(v: &Value, key: &str) -> Result<T, Error> {
    match v.get(key) {
        Some(f) => T::from_value(f).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => match v {
            Value::Object(_) => Ok(T::default()),
            other => Err(Error::expected("object", other)),
        },
    }
}

/// Extracts and deserializes one element of a fixed-arity array.
pub fn de_elem<T: Deserialize>(a: &[Value], idx: usize) -> Result<T, Error> {
    match a.get(idx) {
        Some(e) => T::from_value(e).map_err(|e| Error(format!("element {idx}: {e}"))),
        None => Err(Error(format!("missing tuple element {idx}"))),
    }
}

/// Checks a value is an array of exactly `n` elements.
pub fn as_tuple(v: &Value, n: usize) -> Result<&[Value], Error> {
    let a = v.as_array().ok_or_else(|| Error::expected("array", v))?;
    if a.len() != n {
        return Err(Error(format!(
            "expected {n}-tuple, found {} elements",
            a.len()
        )));
    }
    Ok(a)
}

// ---- primitive impls ----

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // JSON has no NaN/Infinity literal; non-finite floats are
            // emitted as null and restored as NaN.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        // Upstream serde's human-readable encoding: "a.b.c.d".
        Value::String(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("IPv4 string", v))?;
        s.parse()
            .map_err(|_| Error(format!("invalid IPv4 address `{s}`")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single character, found {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = as_tuple(v, N)?;
        let mut out = [T::default(); N];
        for (slot, e) in out.iter_mut().zip(a) {
            *slot = T::from_value(e)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $i:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = as_tuple(v, $n)?;
                Ok(($(de_elem::<$t>(a, $i)?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u16>::from_value(&vec![1u16, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        let pair = ("x".to_string(), 0.25f64);
        assert_eq!(<(String, f64)>::from_value(&pair.to_value()).unwrap(), pair);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&9u8.to_value()).unwrap(), Some(9));
    }

    #[test]
    fn mismatches_report_types() {
        let err = bool::from_value(&Value::String("no".into())).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
        let err = de_field::<u64>(&Value::Object(vec![]), "missing").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
