//! Offline in-tree replacement for the subset of `criterion` this
//! workspace's benches use. It keeps the same shape (`criterion_group!`,
//! `criterion_main!`, `Criterion`, benchmark groups, `Bencher::iter`,
//! `black_box`, `BenchmarkId`) but performs a simple warmup + timed-run
//! measurement and prints mean ns/iter, instead of upstream's full
//! statistical analysis. See `vendor/README.md` for why the workspace
//! vendors its dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark's closure repeatedly and measures it.
pub struct Bencher {
    sample_size: u64,
}

impl Bencher {
    /// Times `f`, printing mean wall-clock ns per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: let caches/branch predictors settle and estimate cost.
        let warmup_start = Instant::now();
        black_box(f());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~0.2 s of measurement, clamped to [sample_size, 1e6] iters.
        let target = Duration::from_millis(200).as_nanos() / estimate.as_nanos().max(1);
        let iters = (target as u64).clamp(self.sample_size, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("    {per_iter:>12.1} ns/iter ({iters} iterations)");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench: {name}");
        let mut b = Bencher { sample_size: 10 };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of iterations per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        println!("  bench: {id}");
        let mut b = Bencher {
            sample_size: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Runs one named benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  bench: {id}");
        let mut b = Bencher {
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
