//! Offline in-tree replacement for the subset of the `bytes` crate API
//! this workspace uses: [`Buf`] for parsing big-endian header fields out
//! of `&[u8]`, [`BufMut`] for appending encoded headers, and a
//! [`BytesMut`] growable buffer. See `vendor/README.md` for why the
//! workspace vendors its dependencies.

/// Read-side cursor over a contiguous byte sequence (network byte order
/// accessors, mirroring `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side sink for encoded bytes (mirroring `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer (mirroring `bytes::BytesMut` far enough for
/// wire-format encoding and test round-trips).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer, returning the underlying bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0x12);
        buf.put_u16(0x3456);
        buf.put_u32(0x789A_BCDE);
        buf.put_slice(&[1, 2, 3]);
        assert_eq!(buf.len(), 10);

        let mut rd: &[u8] = &buf;
        assert_eq!(rd.get_u8(), 0x12);
        assert_eq!(rd.get_u16(), 0x3456);
        assert_eq!(rd.get_u32(), 0x789A_BCDE);
        assert_eq!(rd.remaining(), 3);
        rd.advance(3);
        assert_eq!(rd.remaining(), 0);
    }
}
