//! Offline in-tree replacement for the subset of `proptest` this
//! workspace uses: the [`proptest!`] macro, [`prop_assert!`] /
//! [`prop_assert_eq!`], [`any`], range and tuple strategies with
//! [`Strategy::prop_map`], and [`collection::vec`].
//!
//! Differences from upstream (see `vendor/README.md` for why the
//! workspace vendors its dependencies): cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name) rather than an entropy source, and failing cases are reported
//! with their case number but not shrunk. Integer ranges are sampled
//! uniformly with extra probability mass on the two endpoints, which is
//! where range-boundary bugs live.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Deterministic per-case random source handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for one named test's numbered case.
    pub fn for_case(test_path: &str, case: u64) -> TestRng {
        let seed = fnv1a(test_path.as_bytes()) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, bound)`, `bound > 0`.
    fn below(&mut self, bound: u64) -> u64 {
        use rand::Rng;
        self.inner.gen_range(0..bound)
    }

    /// Draw in `[lo, hi]` with endpoints over-weighted 1/16 each.
    fn edge_biased(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo);
        match self.next_u64() & 0xF {
            0 => lo,
            1 => hi,
            _ if span == u64::MAX => self.next_u64(),
            _ => lo + self.below(span + 1),
        }
    }
}

/// FNV-1a over bytes; stable across runs so failures are reproducible.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of test-case values (upstream's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (upstream's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.edge_biased(<$t>::MIN as u64, <$t>::MAX as u64) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Uniform in [0, 1): the workspace only uses f64 draws as
        // probabilities/fractions.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.edge_biased(self.start as u64, (self.end - 1) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.edge_biased(*self.start() as u64, *self.end() as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.edge_biased(self.start as u64, <$t>::MAX as u64) as $t
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths accepted by [`vec`].
    pub trait SizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// Vectors of `elem`-generated values with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.edge_biased(self.min as u64, self.max as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            const CASES: u64 = 96;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..CASES {
                let mut __rng = $crate::TestRng::for_case(__path, __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = __outcome {
                    panic!("{} failed at case {}/{}:\n{}", __path, __case, CASES, message);
                }
            }
        }
        $crate::proptest!($($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 1u16..=4, z in 250u8..) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(z >= 250);
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(any::<bool>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
        }

        #[test]
        fn tuples_and_map_compose(
            p in (0u32..100, 0u32..100).prop_map(|(a, b)| a + b)
        ) {
            prop_assert!(p < 199);
        }
    }

    #[test]
    fn deterministic_across_reruns() {
        let mut a = TestRng::for_case("x", 1);
        let mut b = TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
