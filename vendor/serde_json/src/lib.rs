//! Offline in-tree replacement for the subset of `serde_json` this
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`],
//! and the [`Value`] re-export. Renders and parses the [`serde::Value`]
//! tree (see `vendor/serde`); output is standard JSON, byte-compatible
//! with upstream `serde_json` for the types the workspace serializes.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
pub use serde::Error;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the value-tree model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the value-tree model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a value to its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from its [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns an error on malformed JSON or when the document does not
/// match `T`'s shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---- rendering ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-round-trip formatting; force a decimal
                // point so integral floats stay floats on re-parse by
                // upstream consumers.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity literal (upstream errors here;
                // we degrade to null so diagnostics never abort a run).
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            level,
            b'[',
            |o, item, ind, lvl| {
                write_value(o, item, ind, lvl);
            },
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            level,
            b'{',
            |o, (k, item), ind, lvl| {
                write_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, item, ind, lvl);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    level: usize,
    open: u8,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for characters outside the BMP.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|u| i64::try_from(u).ok().map(|i| Value::Int(-i)))
                .ok_or_else(|| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a\"b".into())),
            ("n".into(), Value::UInt(7)),
            ("x".into(), Value::Float(0.5)),
            ("flag".into(), Value::Bool(true)),
            (
                "arr".into(),
                Value::Array(vec![Value::Null, Value::Int(-3)]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"a\"b","n":7,"x":0.5,"flag":true,"arr":[null,-3]}"#
        );
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, 2.5, -3, "xAy"], "b": {"c": null}}"#;
        let v: Value = from_str(text).unwrap();
        let again: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Value::Object(vec![("k".into(), Value::UInt(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn integral_floats_keep_a_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
