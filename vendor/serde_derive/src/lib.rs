//! Offline in-tree replacement for `serde_derive`, written against the
//! compiler's own `proc_macro` API (no `syn`/`quote`, which would need
//! the unreachable registry — see `vendor/README.md`).
//!
//! Supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields        → JSON objects
//! * tuple structs with one field     → the inner value (newtype rule)
//! * tuple structs with n > 1 fields  → JSON arrays
//! * unit structs                     → `null`
//! * enums with only unit variants    → variant-name strings
//!
//! These match upstream serde's default (attribute-free) encodings.
//! One field attribute is honoured — the exact form
//! `#[serde(default, skip_serializing_if = "Option::is_none")]`, which
//! makes an `Option` field vanish from the output when `None` and
//! default to `None` when absent on input (upstream semantics for that
//! combination). Generics, data-carrying enum variants, and every other
//! `#[serde(...)]` attribute are rejected with a compile-time panic
//! naming the offending item, so unsupported uses fail loudly rather
//! than mis-encode.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field.
struct Field {
    name: String,
    /// `#[serde(default, skip_serializing_if = "Option::is_none")]`.
    optional: bool,
}

/// The shape of the deriving item.
enum Body {
    /// Named-field struct: fields in declaration order.
    Named(Vec<Field>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Fieldless enum: variant identifiers.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) if fields.iter().any(|f| f.optional) => {
            // Optional fields are pushed conditionally, so the object
            // is built statement by statement in declaration order.
            let stmts: String = fields
                .iter()
                .map(|f| {
                    let n = &f.name;
                    let push = format!(
                        "__fields.push((::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::to_value(&self.{n})));"
                    );
                    if f.optional {
                        format!("if !::std::option::Option::is_none(&self.{n}) {{ {push} }}")
                    } else {
                        push
                    }
                })
                .collect();
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {stmts} ::serde::Value::Object(__fields)"
            )
        }
        Body::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{elems}])")
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    code.parse()
        .expect("serde_derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let n = &f.name;
                    if f.optional {
                        format!("{n}: ::serde::de_field_or_default(v, \"{n}\")?,")
                    } else {
                        format!("{n}: ::serde::de_field(v, \"{n}\")?,")
                    }
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::de_elem(a, {i})?,"))
                .collect();
            format!(
                "let a = ::serde::as_tuple(v, {n})?; \
                 ::std::result::Result::Ok({name}({elems}))"
            )
        }
        Body::Unit => format!(
            "match v {{ \
                 ::serde::Value::Null => ::std::result::Result::Ok({name}), \
                 other => ::std::result::Result::Err(::serde::Error::expected(\"null\", other)), \
             }}"
        ),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match ::serde::Value::as_str(v) {{ \
                     ::std::option::Option::Some(s) => match s {{ \
                         {arms} \
                         other => ::std::result::Result::Err(::serde::Error(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                     }}, \
                     ::std::option::Option::None => \
                         ::std::result::Result::Err(::serde::Error::expected(\"string\", v)), \
                 }}"
            )
        }
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    );
    code.parse()
        .expect("serde_derive: generated impl must parse")
}

// ---- token-level parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += skip_attribute(&tokens[i..]),
            TokenTree::Ident(id) if id.to_string() == "pub" => i += skip_visibility(&tokens[i..]),
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(id.to_string());
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.expect("serde_derive: expected `struct` or `enum`");
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }
    // Skip a `where` clause if present (none in this workspace, but cheap).
    while i < tokens.len() && !matches!(&tokens[i], TokenTree::Group(_) | TokenTree::Punct(_)) {
        i += 1;
    }
    let body = if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(&name, g.stream()))
            }
            other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            None => Body::Unit,
            other => panic!("serde_derive: expected struct body for `{name}`, found {other:?}"),
        }
    };
    Item { name, body }
}

/// Number of tokens an attribute (`#[...]` or `#![...]`) occupies.
fn skip_attribute(tokens: &[TokenTree]) -> usize {
    let mut n = 1; // '#'
    if let Some(TokenTree::Punct(p)) = tokens.get(n) {
        if p.as_char() == '!' {
            n += 1;
        }
    }
    if matches!(tokens.get(n), Some(TokenTree::Group(_))) {
        n += 1;
    }
    n
}

/// Number of tokens a visibility (`pub`, `pub(crate)`, ...) occupies.
fn skip_visibility(tokens: &[TokenTree]) -> usize {
    match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => 2,
        _ => 1,
    }
}

/// Advances past a type up to (and including) the next top-level comma.
/// Commas inside angle brackets (`Vec<(String, f64)>`) are not
/// separators; `>` closing an angle pair is distinguished from the `>`
/// of `->` by peeking at the previous punct.
fn skip_type_and_comma(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut prev = ' ';
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' if prev != '-' => depth -= 1,
                ',' if depth == 0 => return i + 1,
                _ => {}
            }
            prev = p.as_char();
        } else {
            prev = ' ';
        }
        i += 1;
    }
    i
}

/// The one `#[serde(...)]` argument list the derive understands.
const SUPPORTED_ATTR: &str = "default,skip_serializing_if=\"Option::is_none\"";

/// Whether the attribute starting at `tokens[0]` (a `#`) is a
/// `#[serde(...)]` field attribute; panics unless its arguments are
/// exactly the supported combination.
fn serde_attr_marks_optional(tokens: &[TokenTree]) -> bool {
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        return false;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false, // some other attribute (e.g. a doc comment)
    }
    let args: String = match inner.get(1) {
        Some(TokenTree::Group(args)) => args.stream().into_iter().map(|t| t.to_string()).collect(),
        other => panic!("serde_derive (vendored): malformed serde attribute: {other:?}"),
    };
    assert_eq!(
        args, SUPPORTED_ATTR,
        "serde_derive (vendored): only `#[serde({SUPPORTED_ATTR})]` is supported"
    );
    true
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut optional = false;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                optional |= serde_attr_marks_optional(&tokens[i..]);
                i += skip_attribute(&tokens[i..]);
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => i += skip_visibility(&tokens[i..]),
            TokenTree::Ident(id) => {
                fields.push(Field {
                    name: id.to_string(),
                    optional,
                });
                optional = false;
                i += 1; // the field name
                i += 1; // the ':'
                i += skip_type_and_comma(&tokens[i..]);
            }
            other => panic!("serde_derive: unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += skip_attribute(&tokens[i..]),
            TokenTree::Ident(id) if id.to_string() == "pub" => i += skip_visibility(&tokens[i..]),
            _ => {
                count += 1;
                i += skip_type_and_comma(&tokens[i..]);
            }
        }
    }
    count
}

fn parse_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += skip_attribute(&tokens[i..]),
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Group(_)) => panic!(
                        "serde_derive (vendored): variant `{}::{}` carries data, \
                         which is not supported",
                        enum_name,
                        variants.last().unwrap()
                    ),
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                        "serde_derive (vendored): explicit discriminants are not supported \
                         (`{enum_name}`)"
                    ),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    None => {}
                    other => panic!("serde_derive: unexpected token after variant: {other:?}"),
                }
            }
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}
