//! Offline in-tree replacement for the subset of the `rand` crate API
//! this workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::{gen, gen_range}`].
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the small dependency surface it needs as path crates
//! (see `vendor/README.md`). `SmallRng` here is xoshiro256++ seeded through
//! SplitMix64 — the same family the real `rand` crate uses for its small
//! RNG — so statistical quality is comparable; the streams produced for a
//! given seed differ from upstream `rand`, which only shifts which
//! deterministic run a seed labels.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly over their whole domain.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a generator can sample from (`Range` / `RangeInclusive`).
pub trait SampleRange {
    type Output;
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    rng.next_u64() as $t
                } else {
                    lo + uniform_below(rng, span) as $t
                }
            }
        }
        impl SampleRange for core::ops::RangeFrom<$t> {
            type Output = $t;
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_in(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, bound)` via Lemire's method
/// (64x64 widening multiply with rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = (rng.next_u64() as u128) * (bound as u128);
    let mut low = m as u64;
    if low < bound {
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            m = (rng.next_u64() as u128) * (bound as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value over the full domain of `T` (for `f64`: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in the given range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(r.gen_range(0u64..7) < 7);
            let x = r.gen_range(5u16..=9);
            assert!((5..=9).contains(&x));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn mean_is_plausible() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
